(* Golden regression: the EXACT completed-outcome sets of the whole
   corpus, pinned.

   The claim-based tests (expected observable, forbidden absent) catch
   gross soundness bugs; this suite catches silent drift in either
   direction — a semantics change that adds or removes any outcome of
   any corpus program fails here, with the diff in the message.  The
   sets were generated from the exhaustive explorer and audited
   against the paper's annotations; regenerate with the snippet in
   this file's history if the corpus is deliberately extended. *)

let golden : (string * int list list) list =
  [
    ("sb", [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ]);
    ("lb", [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 1 ] ]);
    ("lb_oota", [ [ 0; 0 ] ]);
    ("cas_exclusive", [ [ 0; 1 ] ]);
    ("mp_rel_acq", [ [ -1 ]; [ 42 ] ]);
    ("mp_rlx", [ [ -1 ]; [ 0 ]; [ 42 ] ]);
    ("fig1_foo", [ [ 1 ] ]);
    ("fig1_foo_opt", [ [ 0 ]; [ 1 ] ]);
    ("fig1_foo_rlx", [ [ 0 ]; [ 1 ] ]);
    ("fig1_foo_opt_rlx", [ [ 0 ]; [ 1 ] ]);
    ("reorder_src", [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]);
    ("reorder_tgt", [ [ 0; 0 ]; [ 0; 1 ]; [ 0; 2 ]; [ 1; 2 ] ]);
    ("fig4", [ [ 0; 0 ]; [ 0; 1 ] ]);
    ("fig15_src", [ [ -1 ]; [ 2 ]; [ 4 ] ]);
    ("fig15_bad_tgt", [ [ -1 ]; [ 0 ]; [ 4 ] ]);
    ("fig16_src", [ [ 0 ]; [ 1 ]; [ 2 ] ]);
    ("fig16_tgt", [ [ 0 ]; [ 2 ] ]);
    ("coherence", [ [ 0 ]; [ 1 ]; [ 2 ]; [ 11 ]; [ 12 ]; [ 22 ] ]);
    ("corw", [ [ 1 ]; [ 2 ] ]);
    ("lb_ctrl_dep", [ [ 0; 0 ] ]);
    ("lb_ctrl_indep", [ [ 0; 0 ]; [ 0; 1 ] ]);
    ("release_seq", [ [ -1 ]; [ 42 ] ]);
    ("release_seq_rmw", [ [ -1 ]; [ 42 ] ]);
    ("spinlock", [ [ 0; 1 ] ]);
    ("mp_fences", [ [ -1 ]; [ 42 ] ]);
    ( "iriw",
      [
        [ 0; 0 ]; [ 0; 1 ]; [ 0; 10 ]; [ 0; 11 ]; [ 1; 1 ]; [ 1; 10 ];
        [ 1; 11 ]; [ 10; 10 ]; [ 10; 11 ]; [ 11; 11 ];
      ] );
    ("wrc", [ [ -1 ]; [ 1 ] ]);
    ("ww_racy", [ [ 1 ]; [ 2 ] ]);
    ("ww_sync", [ [ -1 ]; [ 2 ] ]);
    ("fig5_src", [ [ -1 ]; [ 9 ] ]);
    ("fig5_tgt", [ [ -1 ]; [ 9 ] ]);
  ]

let outcomes prog =
  let o = Explore.Enum.behaviors_exn Explore.Enum.Interleaving prog in
  Explore.Traceset.done_outs o.Explore.Enum.traces
  |> List.map (List.sort compare)
  |> List.sort_uniq compare

let test_exact_outcomes () =
  List.iter
    (fun (name, expected) ->
      let t = Litmus.find name in
      Alcotest.(check (list (list int)))
        (name ^ " exact outcome set")
        expected (outcomes t.Litmus.prog))
    golden

let test_golden_covers_corpus () =
  (* every corpus program has a golden entry, so extending the corpus
     forces extending the goldens *)
  List.iter
    (fun (t : Litmus.t) ->
      Alcotest.(check bool)
        (t.Litmus.name ^ " has a golden entry")
        true
        (List.mem_assoc t.Litmus.name golden))
    Litmus.all

let () =
  Alcotest.run "golden"
    [
      ( "outcomes",
        [
          Alcotest.test_case "exact sets" `Slow test_exact_outcomes;
          Alcotest.test_case "coverage" `Quick test_golden_covers_corpus;
        ] );
    ]
