(* The message memory: disjoint insertion, readability, canonical
   slotting and the capped memory (Sec. 3). *)

let rat = Alcotest.testable Rat.pp Rat.equal
let msg = Alcotest.testable Ps.Message.pp Ps.Message.equal
let t n = Rat.of_int n

let mk x v f to_ =
  Ps.Message.msg ~var:x ~value:v ~from_:(t f) ~to_:(t to_) ~view:Ps.View.bot

let test_init () =
  let m = Ps.Memory.init [ "x"; "y" ] in
  Alcotest.(check (slist string compare)) "vars" [ "x"; "y" ] (Ps.Memory.vars m);
  match Ps.Memory.per_loc "x" m with
  | [ init ] ->
      Alcotest.check msg "init message" (Ps.Message.init "x") init;
      Alcotest.(check (option int)) "value 0" (Some 0) (Ps.Message.value init)
  | _ -> Alcotest.fail "expected exactly the initialization message"

let test_add_disjoint () =
  let m = Ps.Memory.init [ "x" ] in
  let m = Ps.Memory.add_exn (mk "x" 1 1 2) m in
  let m = Ps.Memory.add_exn (mk "x" 2 3 4) m in
  Alcotest.(check int) "3 messages" 3 (List.length (Ps.Memory.per_loc "x" m));
  (* overlapping insert rejected *)
  (match Ps.Memory.add (mk "x" 9 1 3) m with
  | Error clash ->
      Alcotest.check msg "clash is the (1,2] message" (mk "x" 1 1 2) clash
  | Ok _ -> Alcotest.fail "overlap accepted");
  (* duplicate "to" rejected *)
  (match Ps.Memory.add (mk "x" 9 5 4) m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should reject: interval (5,4] nonsensical/overlap");
  (* same location, touching endpoints are fine: (2,3] fits *)
  match Ps.Memory.add (mk "x" 7 2 3) m with
  | Ok m' -> Alcotest.(check int) "4 messages" 4 (List.length (Ps.Memory.per_loc "x" m'))
  | Error _ -> Alcotest.fail "adjacent interval rejected"

let test_add_implicit_init () =
  let m = Ps.Memory.init [] in
  let m = Ps.Memory.add_exn (mk "z" 5 1 2) m in
  Alcotest.(check int) "init added implicitly" 2
    (List.length (Ps.Memory.per_loc "z" m))

let test_find_contains_remove () =
  let m = Ps.Memory.init [ "x" ] in
  let msg1 = mk "x" 1 1 2 in
  let m = Ps.Memory.add_exn msg1 m in
  (match Ps.Memory.find "x" (t 2) m with
  | Some found -> Alcotest.check msg "find by to" msg1 found
  | None -> Alcotest.fail "not found");
  Alcotest.(check bool) "contains" true (Ps.Memory.contains msg1 m);
  let m' = Ps.Memory.remove msg1 m in
  Alcotest.(check bool) "removed" false (Ps.Memory.contains msg1 m')

let test_readable () =
  let m = Ps.Memory.init [ "x" ] in
  let m = Ps.Memory.add_exn (mk "x" 1 1 2) m in
  let m = Ps.Memory.add_exn (mk "x" 2 3 4) m in
  (* a non-atomic read bumps Trlx only, so Tna stays 0 *)
  let view = Ps.View.observe_read Lang.Modes.Na "x" (t 2) Ps.View.bot in
  let readable = Ps.Memory.readable Lang.Modes.Rlx "x" view m in
  Alcotest.(check int) "two readable (>= Trlx)" 2 (List.length readable);
  let readable_na = Ps.Memory.readable Lang.Modes.Na "x" view m in
  Alcotest.(check int) "na uses Tna (still 0): all three" 3
    (List.length readable_na);
  (* reservations are never readable *)
  let m = Ps.Memory.add_exn (Ps.Message.rsv ~var:"x" ~from_:(t 4) ~to_:(t 5)) m in
  Alcotest.(check int) "reservation not readable" 2
    (List.length (Ps.Memory.readable Lang.Modes.Rlx "x" view m))

let test_last_ts () =
  let m = Ps.Memory.init [ "x" ] in
  Alcotest.check rat "init last" Rat.zero (Ps.Memory.last_ts "x" m);
  let m = Ps.Memory.add_exn (mk "x" 1 1 2) m in
  Alcotest.check rat "after add" (t 2) (Ps.Memory.last_ts "x" m);
  Alcotest.check rat "unknown loc" Rat.zero (Ps.Memory.last_ts "zz" m)

let test_write_slots () =
  let m = Ps.Memory.init [ "x" ] in
  let m = Ps.Memory.add_exn (mk "x" 1 4 6) m in
  let slots = Ps.Memory.write_slots "x" ~min:Rat.zero m in
  (* one slot inside the gap (0, 4), one beyond 6 *)
  Alcotest.(check int) "two slots" 2 (List.length slots);
  List.iter
    (fun (f, to_) ->
      Alcotest.(check bool) "from < to" true (Rat.lt f to_);
      let probe = Ps.Message.msg ~var:"x" ~value:9 ~from_:f ~to_ ~view:Ps.View.bot in
      match Ps.Memory.add probe m with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "slot overlaps existing message")
    slots;
  (* min constraint: everything below the view is filtered *)
  let slots_hi = Ps.Memory.write_slots "x" ~min:(t 6) m in
  List.iter
    (fun (_, to_) -> Alcotest.(check bool) "to > min" true (Rat.gt to_ (t 6)))
    slots_hi

let test_attach_slot () =
  let m = Ps.Memory.init [ "x" ] in
  let m = Ps.Memory.add_exn (mk "x" 1 4 6) m in
  (* attach after the init message: the gap (0,4) is free *)
  (match Ps.Memory.attach_slot "x" ~after:Rat.zero m with
  | Some (f, to_) ->
      Alcotest.check rat "from is exactly 0" Rat.zero f;
      Alcotest.(check bool) "to inside gap" true (Rat.lt to_ (t 4))
  | None -> Alcotest.fail "expected an attach slot");
  (* attach after the last message *)
  (match Ps.Memory.attach_slot "x" ~after:(t 6) m with
  | Some (f, _) -> Alcotest.check rat "from is 6" (t 6) f
  | None -> Alcotest.fail "expected a slot after last");
  (* blocked: a message starting exactly at 'after' *)
  let m2 = Ps.Memory.add_exn (mk "x" 2 6 8) m in
  (match Ps.Memory.attach_slot "x" ~after:(t 6) m2 with
  | None -> ()
  | Some _ -> Alcotest.fail "adjacent space is occupied");
  (* blocked: 'after' strictly inside an interval *)
  match Ps.Memory.attach_slot "x" ~after:(t 5) m with
  | None -> ()
  | Some _ -> Alcotest.fail "inside an occupied interval"

let test_cap () =
  let m = Ps.Memory.init [ "x"; "y" ] in
  let m = Ps.Memory.add_exn (mk "x" 1 2 3) m in
  let m = Ps.Memory.add_exn (mk "x" 2 5 6) m in
  let capped = Ps.Memory.cap m in
  let xs = Ps.Memory.per_loc "x" capped in
  (* init(0,0], rsv(0,2], msg(2,3], rsv(3,5], msg(5,6], cap rsv(6,7] *)
  Alcotest.(check int) "gaps filled + cap" 6 (List.length xs);
  let rsvs = List.filter Ps.Message.is_reservation xs in
  Alcotest.(check int) "three reservations" 3 (List.length rsvs);
  (* cap reservation spans (t_last, t_last+1] *)
  let cap_rsv = List.nth xs (List.length xs - 1) in
  Alcotest.check rat "cap from" (t 6) (Ps.Message.from_ cap_rsv);
  Alcotest.check rat "cap to" (t 7) (Ps.Message.to_ cap_rsv);
  (* y has just its init and a cap *)
  Alcotest.(check int) "y capped" 2 (List.length (Ps.Memory.per_loc "y" capped));
  (* no write slot fits strictly between existing messages anymore *)
  let slots = Ps.Memory.write_slots "x" ~min:Rat.zero capped in
  List.iter
    (fun (_, to_) ->
      Alcotest.(check bool) "only beyond the cap" true (Rat.gt to_ (t 7)))
    slots

let test_overlaps () =
  Alcotest.(check bool) "overlap" true
    (Ps.Message.overlaps (mk "x" 1 1 3) (mk "x" 2 2 4));
  Alcotest.(check bool) "disjoint" false
    (Ps.Message.overlaps (mk "x" 1 1 2) (mk "x" 2 2 3));
  Alcotest.(check bool) "different locations" false
    (Ps.Message.overlaps (mk "x" 1 1 3) (mk "y" 2 2 4));
  Alcotest.(check bool) "zero-width init never overlaps" false
    (Ps.Message.overlaps (Ps.Message.init "x") (mk "x" 1 0 1))

(* ------------------------------------------------------------------ *)
(* Properties: random insertion sequences keep per-location lists
   sorted and disjoint; slots returned are always insertable. *)

let ops_gen =
  QCheck.Gen.(list_size (int_range 1 25) (pair (int_range 0 2) (int_range 0 50)))

let build ops =
  List.fold_left
    (fun m (loc_i, _) ->
      let x = Printf.sprintf "v%d" loc_i in
      match Ps.Memory.write_slots x ~min:Rat.zero m with
      | [] -> m
      | slots ->
          let f, to_ = List.nth slots (loc_i mod List.length slots) in
          Ps.Memory.add_exn
            (Ps.Message.msg ~var:x ~value:loc_i ~from_:f ~to_ ~view:Ps.View.bot)
            m)
    (Ps.Memory.init [ "v0"; "v1"; "v2" ])
    ops

let mem_gen =
  QCheck.make ~print:(fun m -> Format.asprintf "%a" Ps.Memory.pp m)
    (QCheck.Gen.map build ops_gen)

let sorted_disjoint m =
  List.for_all
    (fun x ->
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Rat.le (Ps.Message.to_ a) (Ps.Message.from_ b)
            && (not (Ps.Message.overlaps a b))
            && ok rest
        | _ -> true
      in
      ok (Ps.Memory.per_loc x m))
    (Ps.Memory.vars m)

let props =
  [
    QCheck.Test.make ~count:200 ~name:"insertion keeps sorted+disjoint" mem_gen
      sorted_disjoint;
    QCheck.Test.make ~count:200 ~name:"every slot is insertable" mem_gen
      (fun m ->
        List.for_all
          (fun x ->
            List.for_all
              (fun (f, to_) ->
                match
                  Ps.Memory.add
                    (Ps.Message.msg ~var:x ~value:0 ~from_:f ~to_
                       ~view:Ps.View.bot)
                    m
                with
                | Ok _ -> true
                | Error _ -> false)
              (Ps.Memory.write_slots x ~min:Rat.zero m))
          (Ps.Memory.vars m));
    QCheck.Test.make ~count:200 ~name:"cap leaves no gaps" mem_gen (fun m ->
        let capped = Ps.Memory.cap m in
        List.for_all
          (fun x ->
            let rec no_gap = function
              | a :: (b :: _ as rest) ->
                  Rat.equal (Ps.Message.to_ a) (Ps.Message.from_ b)
                  && no_gap rest
              | _ -> true
            in
            no_gap (Ps.Memory.per_loc x capped))
          (Ps.Memory.vars capped));
    QCheck.Test.make ~count:200 ~name:"cap preserves concrete messages" mem_gen
      (fun m ->
        let capped = Ps.Memory.cap m in
        List.for_all
          (fun msg ->
            (not (Ps.Message.is_concrete msg)) || Ps.Memory.contains msg capped)
          (Ps.Memory.messages m));
  ]

let () =
  Alcotest.run "memory"
    [
      ( "unit",
        [
          Alcotest.test_case "init" `Quick test_init;
          Alcotest.test_case "add/disjointness" `Quick test_add_disjoint;
          Alcotest.test_case "implicit init" `Quick test_add_implicit_init;
          Alcotest.test_case "find/contains/remove" `Quick
            test_find_contains_remove;
          Alcotest.test_case "readable" `Quick test_readable;
          Alcotest.test_case "last_ts" `Quick test_last_ts;
          Alcotest.test_case "write_slots" `Quick test_write_slots;
          Alcotest.test_case "attach_slot" `Quick test_attach_slot;
          Alcotest.test_case "capped memory" `Quick test_cap;
          Alcotest.test_case "overlaps" `Quick test_overlaps;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
