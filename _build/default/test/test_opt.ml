(* The four verified optimizations (Sec. 7): transformation shapes,
   mode-sensitivity, refinement on the whole corpus, ww-RF
   preservation and vertical composition. *)

open Lang

let parse s = Wf.check_exn (Parse.program_of_string s)
let apply = Opt.Pass.apply
let equal_prog = Ast.equal_program

let fn_block p f l =
  Ast.LabelMap.find l (Ast.FnameMap.find f p.Ast.code).Ast.blocks

(* ------------------------------------------------------------------ *)
(* ConstProp *)

let test_constprop_folds () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 2;
  b := a + 3;
  x.na := b;
  c := x.na;
  print(c * a);
  return;
}|}
  in
  let p' = apply Opt.Constprop.pass_fix p in
  let b = fn_block p' "t" "L" in
  match b.Ast.instrs with
  | [ Ast.Assign ("a", Ast.Val 2);
      Ast.Assign ("b", Ast.Val 5);
      Ast.Store ("x", Ast.Val 5, Lang.Modes.WNa);
      Ast.Assign ("c", Ast.Val 5);
      Ast.Print (Ast.Val 10) ] -> ()
  | _ ->
      Alcotest.failf "unexpected constprop result:@.%s"
        (Pp.program_to_string p')

let test_constprop_branch_folding () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 1;
  be a == 1, B, C;
B:
  print(1);
  return;
C:
  print(2);
  return;
}|}
  in
  let p' = apply Opt.Constprop.pass p in
  match (fn_block p' "t" "L").Ast.term with
  | Ast.Jmp "B" -> ()
  | t -> Alcotest.failf "expected folded jump, got %s"
           (Format.asprintf "%a" Pp.pp_terminator t)

let test_constprop_acquire_barrier () =
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  x.na := 5;
  r := f.acq;
  c := x.na;
  print(c);
  return;
}|}
  in
  let p' = apply Opt.Constprop.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; _; Ast.Load ("c", "x", Lang.Modes.Na); _ ] -> ()
  | _ ->
      Alcotest.failf "load across acquire must not be folded:@.%s"
        (Pp.program_to_string p')

let test_constprop_never_touches_atomics () =
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  f.rlx := 3;
  r := f.rlx;
  print(r);
  return;
}|}
  in
  let p' = apply Opt.Constprop.pass_fix p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ Ast.Store ("f", Ast.Val 3, Lang.Modes.WRlx);
      Ast.Load ("r", "f", Lang.Modes.Rlx); _ ] -> ()
  | _ ->
      Alcotest.failf "atomic accesses must be untouched:@.%s"
        (Pp.program_to_string p')

(* ------------------------------------------------------------------ *)
(* DCE *)

let test_dce_fig16 () =
  let p' = apply Opt.Dce.pass Litmus.fig16_src.Litmus.prog in
  match (fn_block p' "t1" "L0").Ast.instrs with
  | [ Ast.Skip; Ast.Store ("x", Ast.Val 2, Lang.Modes.WNa) ] -> ()
  | _ -> Alcotest.failf "expected dead store eliminated:@.%s" (Pp.program_to_string p')

let test_dce_respects_release () =
  (* Fig. 15: the write before the release write must survive *)
  let p' = apply Opt.Dce.pass Litmus.fig15_src.Litmus.prog in
  Alcotest.(check bool) "no change across release" true
    (equal_prog p' Litmus.fig15_src.Litmus.prog)

let test_dce_across_acquire () =
  (* DCE is allowed across acquire reads (Sec. 7.1) *)
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  y.na := 2;
  r := f.acq;
  y.na := 4;
  r2 := y.na;
  print(r2);
  return;
}|}
  in
  let p' = apply Opt.Dce.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | Ast.Skip :: _ -> ()
  | _ ->
      Alcotest.failf "dead write across acquire should be eliminated:@.%s"
        (Pp.program_to_string p')

let test_dce_dead_load_and_assign () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := x.na;
  b := 7;
  print(1);
  return;
}|}
  in
  let p' = apply Opt.Dce.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ Ast.Skip; Ast.Skip; Ast.Print (Ast.Val 1) ] -> ()
  | _ -> Alcotest.failf "dead load/assign not eliminated:@.%s" (Pp.program_to_string p')

let test_dce_keeps_printed_values () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 7;
  print(a);
  return;
}|}
  in
  Alcotest.(check bool) "nothing eliminated" true
    (equal_prog (apply Opt.Dce.pass p) p)

(* ------------------------------------------------------------------ *)
(* CSE *)

let test_cse_expressions () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := b + c;
  d := b + c;
  print(d);
  return;
}|}
  in
  let p' = apply Opt.Cse.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; Ast.Assign ("d", Ast.Reg "a"); _ ] -> ()
  | _ -> Alcotest.failf "expected CSE copy:@.%s" (Pp.program_to_string p')

let test_cse_redundant_load () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := x.na;
  b := x.na;
  print(a + b);
  return;
}|}
  in
  let p' = apply Opt.Cse.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; Ast.Assign ("b", Ast.Reg "a"); _ ] -> ()
  | _ -> Alcotest.failf "expected redundant load eliminated:@.%s" (Pp.program_to_string p')

let test_cse_acquire_barrier () =
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  a := x.na;
  r := f.acq;
  b := x.na;
  print(a + b);
  return;
}|}
  in
  let p' = apply Opt.Cse.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; _; Ast.Load ("b", "x", Lang.Modes.Na); _ ] -> ()
  | _ ->
      Alcotest.failf "reload across acquire must stay:@.%s"
        (Pp.program_to_string p')

let test_cse_store_forwarding () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  x.na := a;
  b := x.na;
  print(b);
  return;
}|}
  in
  let p' = apply Opt.Cse.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; Ast.Assign ("b", Ast.Reg "a"); _ ] -> ()
  | _ -> Alcotest.failf "expected store-to-load forwarding:@.%s" (Pp.program_to_string p')

(* ------------------------------------------------------------------ *)
(* LInv / LICM *)

let test_linv_hoists () =
  let p = Litmus.fig1_foo_rlx.Litmus.prog in
  let p' = apply Opt.Linv.pass p in
  Alcotest.(check bool) "changed" false (equal_prog p p');
  (* a preheader block was added with the hoisted load *)
  let foo = Ast.FnameMap.find "foo" p'.Ast.code in
  let ph =
    Ast.LabelMap.filter
      (fun _ b ->
        List.exists
          (function Ast.Load (_, "y", Lang.Modes.Na) -> true | _ -> false)
          b.Ast.instrs)
      foo.Ast.blocks
  in
  Alcotest.(check bool) "hoisted load exists outside loop" true
    (not (Ast.LabelMap.is_empty ph))

let test_linv_acquire_blocks_hoist () =
  let p = Litmus.fig1_foo.Litmus.prog in
  Alcotest.(check bool) "acquire read in loop: no hoist" true
    (equal_prog (apply Opt.Linv.pass p) p);
  Alcotest.(check bool) "licm also a no-op" true
    (equal_prog (apply Opt.Licm.pass p) p)

let test_linv_store_blocks_hoist () =
  let p =
    parse
      {|threads t;
proc t entry H {
H:
  r := x.na;
  x.na := r + 1;
  be r < 3, H, E;
E:
  return;
}|}
  in
  Alcotest.(check bool) "stored-in-loop location not hoisted" true
    (equal_prog (apply Opt.Linv.pass p) p)

let test_linv_across_release_write () =
  (* Sec. 1: "LICM is allowed across a relaxed read/write or a release
     write, but not an acquire read" — a release write in the loop
     body must not block hoisting, and the result must refine. *)
  let p =
    parse
      {|atomics f;
threads t env;
proc t entry L0 {
L0:
  r1 := 0;
  jmp H;
H:
  be r1 < 2, B, E;
B:
  r2 := inv.na;
  f.rel := r1;
  r1 := r1 + 1;
  jmp H;
E:
  print(r2);
  return;
}
proc env entry E0 {
E0:
  inv.na := 7;
  return;
}|}
  in
  let p' = apply Opt.Licm.pass p in
  Alcotest.(check bool) "hoisted across the release write" false
    (equal_prog p' p);
  let body = fn_block p' "t" "B" in
  Alcotest.(check bool) "loop body no longer loads inv" false
    (List.exists
       (function Ast.Load (_, "inv", _) -> true | _ -> false)
       body.Ast.instrs);
  Alcotest.(check bool) "refines" true
    (Explore.Refine.refines ~target:p' ~source:p ())

let test_dce_across_acquire_cas () =
  (* DCE across an acquire CAS (read part acq, write part rlx) is
     allowed; across a release CAS it is not. *)
  let mk wmode =
    parse
      (Printf.sprintf
         {|atomics f;
threads t;
proc t entry L {
L:
  y.na := 2;
  r := cas.acq.%s(f, 0, 1);
  y.na := 4;
  r2 := y.na;
  print(r2);
  return;
}|}
         wmode)
  in
  let acq_rlx = apply Opt.Dce.pass (mk "rlx") in
  (match (fn_block acq_rlx "t" "L").Ast.instrs with
  | Ast.Skip :: _ -> ()
  | _ -> Alcotest.fail "dead write across acquire CAS should be eliminated");
  let acq_rel = apply Opt.Dce.pass (mk "rel") in
  match (fn_block acq_rel "t" "L").Ast.instrs with
  | Ast.Store ("y", _, _) :: _ -> ()
  | _ -> Alcotest.fail "write before a release CAS must be kept"

let test_licm_full () =
  let p = Litmus.fig1_foo_rlx.Litmus.prog in
  let p' = apply Opt.Licm.pass p in
  (* after LICM, the loop body no longer loads y *)
  let foo = Ast.FnameMap.find "foo" p'.Ast.code in
  let body_loads_y =
    List.exists
      (function Ast.Load (_, "y", Lang.Modes.Na) -> true | _ -> false)
      (Ast.LabelMap.find "L3" foo.Ast.blocks).Ast.instrs
  in
  Alcotest.(check bool) "loop body reads register instead of y" false
    body_loads_y

let test_linv_invariant_loads_api () =
  let ch = Ast.FnameMap.find "foo" Litmus.fig1_foo_rlx.Litmus.prog.Ast.code in
  match Analysis.Loops.find ch with
  | [] -> Alcotest.fail "expected loops"
  | loops ->
      let outer =
        List.find (fun l -> l.Analysis.Loops.header = "L1") loops
      in
      Alcotest.(check (list string)) "y is the invariant load" [ "y" ]
        (Opt.Linv.invariant_loads ch outer)

(* ------------------------------------------------------------------ *)
(* Copy propagation *)

let test_copyprop_rewrites () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := x.na;
  b := a;
  c := b;
  print(c + b);
  return;
}|}
  in
  let p' = apply Opt.Copyprop.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; Ast.Assign ("b", Ast.Reg "a"); Ast.Assign ("c", Ast.Reg "a");
      Ast.Print (Ast.Bin (Ast.Add, Ast.Reg "a", Ast.Reg "a")) ] -> ()
  | _ -> Alcotest.failf "copies not propagated:@.%s" (Pp.program_to_string p')

let test_copyprop_kill () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  b := a;
  a := 5;
  print(b);
  return;
}|}
  in
  let p' = apply Opt.Copyprop.pass p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ _; _; Ast.Print (Ast.Reg "b") ] -> ()
  | _ ->
      Alcotest.failf "use after original redefined must not be rewritten:@.%s"
        (Pp.program_to_string p')

let test_copyprop_then_dce_removes_cse_moves () =
  (* the classic pipeline: CSE introduces a move, copyprop rewires the
     use, DCE deletes the move *)
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := x.na;
  b := x.na;
  print(b);
  return;
}|}
  in
  let pipeline =
    Opt.Pass.(compose Opt.Cse.pass (compose Opt.Copyprop.pass
                 (compose Opt.Dce.pass Opt.Cleanup.pass)))
  in
  let p' = apply pipeline p in
  match (fn_block p' "t" "L").Ast.instrs with
  | [ Ast.Load ("a", "x", Lang.Modes.Na); Ast.Print (Ast.Reg "a") ] -> ()
  | _ -> Alcotest.failf "pipeline left residue:@.%s" (Pp.program_to_string p')

(* ------------------------------------------------------------------ *)
(* Cleanup *)

let test_cleanup_unreachable () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 1;
  be a == 1, B, C;
B:
  print(1);
  return;
C:
  print(2);
  return;
}|}
  in
  let folded = apply Opt.Constprop.pass p in
  let cleaned = apply Opt.Cleanup.pass folded in
  let ch = Ast.FnameMap.find "t" cleaned.Ast.code in
  Alcotest.(check bool) "dead branch block removed" false
    (Ast.LabelMap.mem "C" ch.Ast.blocks);
  Alcotest.(check bool) "live block kept" true (Ast.LabelMap.mem "B" ch.Ast.blocks);
  Alcotest.(check bool) "still refines" true
    (Explore.Refine.refines ~target:cleaned ~source:p ())

let test_cleanup () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  skip;
  a := 1;
  skip;
  print(a);
  return;
}|}
  in
  let p' = apply Opt.Cleanup.pass p in
  Alcotest.(check int) "skips removed" 2
    (List.length (fn_block p' "t" "L").Ast.instrs)

(* ------------------------------------------------------------------ *)
(* Pass infrastructure *)

let test_compose_and_fixpoint () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 1;
  b := a + 1;
  c := b + 1;
  print(c);
  return;
}|}
  in
  (* the dataflow analysis already reaches its fixpoint in one round
     on a chain, so iterating converges immediately and stays put *)
  let one = apply Opt.Constprop.pass p in
  let fix = apply Opt.Constprop.pass_fix p in
  Alcotest.(check bool) "one round suffices on a chain" true
    (equal_prog one fix);
  Alcotest.(check bool) "fixpoint of the fixpoint is stable" true
    (equal_prog fix (apply Opt.Constprop.pass_fix fix));
  match (fn_block fix "t" "L").Ast.instrs with
  | [ _; _; Ast.Assign ("c", Ast.Val 3); Ast.Print (Ast.Val 3) ] -> ()
  | _ -> Alcotest.failf "fixpoint incomplete:@.%s" (Pp.program_to_string fix)

let test_passes_preserve_interface () =
  (* threads and atomics are preserved verbatim by every pass *)
  let passes =
    [ Opt.Constprop.pass; Opt.Dce.pass; Opt.Cse.pass; Opt.Copyprop.pass;
      Opt.Linv.pass; Opt.Licm.pass; Opt.Cleanup.pass ]
  in
  List.iter
    (fun (t : Litmus.t) ->
      List.iter
        (fun (pass : Opt.Pass.t) ->
          let p' = apply pass t.Litmus.prog in
          Alcotest.(check bool)
            (t.Litmus.name ^ "/" ^ pass.Opt.Pass.name ^ " atomics preserved")
            true
            (Ast.VarSet.equal p'.Ast.atomics t.Litmus.prog.Ast.atomics);
          Alcotest.(check (list string))
            (t.Litmus.name ^ "/" ^ pass.Opt.Pass.name ^ " threads preserved")
            t.Litmus.prog.Ast.threads p'.Ast.threads;
          (* targets remain well-formed *)
          match Wf.check p' with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s/%s: target ill-formed: %a" t.Litmus.name
                pass.Opt.Pass.name
                (Format.pp_print_list Wf.pp_error)
                es)
        passes)
    Litmus.all

(* ------------------------------------------------------------------ *)
(* The headline: every pass refines on every corpus program
   (Theorem 6.6, exhaustively on the bounded behaviour sets), and
   ww-RF is preserved (Lemma 6.2). *)

let test_refinement_corpus () =
  let passes =
    [ Opt.Constprop.pass; Opt.Dce.pass; Opt.Cse.pass; Opt.Copyprop.pass;
      Opt.Linv.pass; Opt.Licm.pass; Opt.Cleanup.pass ]
  in
  List.iter
    (fun (t : Litmus.t) ->
      List.iter
        (fun (pass : Opt.Pass.t) ->
          let tgt = apply pass t.Litmus.prog in
          if not (equal_prog tgt t.Litmus.prog) then begin
            Alcotest.(check bool)
              (t.Litmus.name ^ "/" ^ pass.Opt.Pass.name ^ " refines")
              true
              (Explore.Refine.refines ~target:tgt ~source:t.Litmus.prog ());
            (* ww-RF preservation *)
            let free p =
              match Race.ww_rf p with Ok Race.Free -> true | _ -> false
            in
            if free t.Litmus.prog then
              Alcotest.(check bool)
                (t.Litmus.name ^ "/" ^ pass.Opt.Pass.name ^ " preserves ww-RF")
                true (free tgt)
          end)
        passes)
    Litmus.all

let test_vertical_composition () =
  (* LICM = CSE ∘ LInv equals running the passes in sequence, and the
     composite refines (transitivity of refinement, Sec. 2.6). *)
  let p = Litmus.fig1_foo_rlx.Litmus.prog in
  let licm = apply Opt.Licm.pass p in
  let seq = apply Opt.Cse.pass (apply Opt.Linv.pass p) in
  Alcotest.(check bool) "licm = cse ∘ linv" true (equal_prog licm seq);
  Alcotest.(check bool) "composite refines" true
    (Explore.Refine.refines ~target:licm ~source:p ())

let () =
  Alcotest.run "opt"
    [
      ( "constprop",
        [
          Alcotest.test_case "folds" `Quick test_constprop_folds;
          Alcotest.test_case "branch folding" `Quick
            test_constprop_branch_folding;
          Alcotest.test_case "acquire barrier" `Quick
            test_constprop_acquire_barrier;
          Alcotest.test_case "atomics untouched" `Quick
            test_constprop_never_touches_atomics;
        ] );
      ( "dce",
        [
          Alcotest.test_case "Fig. 16" `Quick test_dce_fig16;
          Alcotest.test_case "release barrier (Fig. 15)" `Quick
            test_dce_respects_release;
          Alcotest.test_case "across acquire" `Quick test_dce_across_acquire;
          Alcotest.test_case "across acquire CAS / release CAS" `Quick
            test_dce_across_acquire_cas;
          Alcotest.test_case "dead load/assign" `Quick
            test_dce_dead_load_and_assign;
          Alcotest.test_case "live values kept" `Quick
            test_dce_keeps_printed_values;
        ] );
      ( "cse",
        [
          Alcotest.test_case "expressions" `Quick test_cse_expressions;
          Alcotest.test_case "redundant load" `Quick test_cse_redundant_load;
          Alcotest.test_case "acquire barrier" `Quick test_cse_acquire_barrier;
          Alcotest.test_case "store forwarding" `Quick test_cse_store_forwarding;
        ] );
      ( "licm",
        [
          Alcotest.test_case "linv hoists" `Quick test_linv_hoists;
          Alcotest.test_case "acquire blocks hoisting (Fig. 1)" `Quick
            test_linv_acquire_blocks_hoist;
          Alcotest.test_case "stores block hoisting" `Quick
            test_linv_store_blocks_hoist;
          Alcotest.test_case "hoists across release writes" `Quick
            test_linv_across_release_write;
          Alcotest.test_case "full LICM" `Quick test_licm_full;
          Alcotest.test_case "invariant_loads" `Quick
            test_linv_invariant_loads_api;
        ] );
      ( "copyprop",
        [
          Alcotest.test_case "rewrites uses" `Quick test_copyprop_rewrites;
          Alcotest.test_case "kills on redefinition" `Quick test_copyprop_kill;
          Alcotest.test_case "cse+copyprop+dce pipeline" `Quick
            test_copyprop_then_dce_removes_cse_moves;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "cleanup" `Quick test_cleanup;
          Alcotest.test_case "unreachable blocks" `Quick
            test_cleanup_unreachable;
          Alcotest.test_case "compose/fixpoint" `Quick test_compose_and_fixpoint;
          Alcotest.test_case "interface preserved" `Slow
            test_passes_preserve_interface;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "refinement on corpus (Thm. 6.6)" `Slow
            test_refinement_corpus;
          Alcotest.test_case "vertical composition" `Quick
            test_vertical_composition;
        ] );
    ]
