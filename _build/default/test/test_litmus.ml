(* Corpus integrity: names, well-formedness, claim sanity. *)

let test_names_unique () =
  let names = List.map (fun (t : Litmus.t) -> t.Litmus.name) Litmus.all in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_find () =
  List.iter
    (fun (t : Litmus.t) ->
      Alcotest.(check string) "find by name" t.Litmus.name
        (Litmus.find t.Litmus.name).Litmus.name)
    Litmus.all;
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Litmus.find "no_such_test"))

let test_well_formed () =
  List.iter
    (fun (t : Litmus.t) ->
      match Lang.Wf.check t.Litmus.prog with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s ill-formed: %a" t.Litmus.name
            (Format.pp_print_list Lang.Wf.pp_error)
            es)
    Litmus.all

let test_claims_sane () =
  List.iter
    (fun (t : Litmus.t) ->
      Alcotest.(check bool)
        (t.Litmus.name ^ " has expected outcomes")
        true
        (t.Litmus.expected <> []);
      (* no outcome is both expected and forbidden *)
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (t.Litmus.name ^ " consistent claims")
            false
            (List.mem (List.sort compare e)
               (List.map (List.sort compare) t.Litmus.forbidden)))
        (List.map (List.sort compare) t.Litmus.expected))
    Litmus.all

let test_pairings () =
  (* the source/target pairs used by the experiments exist and share
     their thread structure *)
  List.iter
    (fun (s, tt) ->
      let src = Litmus.find s and tgt = Litmus.find tt in
      Alcotest.(check (list string))
        (s ^ "/" ^ tt ^ " same threads")
        src.Litmus.prog.Lang.Ast.threads tgt.Litmus.prog.Lang.Ast.threads)
    [
      ("fig1_foo", "fig1_foo_opt");
      ("fig1_foo_rlx", "fig1_foo_opt_rlx");
      ("reorder_src", "reorder_tgt");
      ("fig15_src", "fig15_bad_tgt");
      ("fig16_src", "fig16_tgt");
      ("fig5_src", "fig5_tgt");
    ]

let test_promise_annotations () =
  (* programs marked needs_promises really do lose an expected outcome
     under promise-free exploration *)
  List.iter
    (fun (t : Litmus.t) ->
      if t.Litmus.needs_promises then begin
        let sorted l = List.sort compare l in
        let outs cfg =
          let o =
            Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Interleaving
              t.Litmus.prog
          in
          Explore.Traceset.done_outs o.Explore.Enum.traces
          |> List.map sorted |> List.sort_uniq compare
        in
        let without = outs Explore.Config.quick in
        let missing =
          List.exists
            (fun e -> not (List.mem (sorted e) without))
            t.Litmus.expected
        in
        Alcotest.(check bool)
          (t.Litmus.name ^ " promise-dependent outcome")
          true missing
      end)
    Litmus.all

let () =
  Alcotest.run "litmus"
    [
      ( "integrity",
        [
          Alcotest.test_case "unique names" `Quick test_names_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "well-formed" `Quick test_well_formed;
          Alcotest.test_case "claims sane" `Quick test_claims_sane;
          Alcotest.test_case "pairings" `Quick test_pairings;
          Alcotest.test_case "promise annotations" `Slow
            test_promise_annotations;
        ] );
    ]
