(* Time maps, thread views and their update rules (Fig. 8 / Sec. 3). *)

module TM = Ps.View.TimeMap

let rat = Alcotest.testable Rat.pp Rat.equal
let tm = Alcotest.testable TM.pp TM.equal
let view = Alcotest.testable Ps.View.pp Ps.View.equal

let t n = Rat.of_int n

let test_timemap_basics () =
  Alcotest.check rat "bot is 0" Rat.zero (TM.get "x" TM.bot);
  let m = TM.set "x" (t 3) TM.bot in
  Alcotest.check rat "set/get" (t 3) (TM.get "x" m);
  Alcotest.check rat "other loc still 0" Rat.zero (TM.get "y" m);
  (* Setting 0 keeps the sparse representation canonical. *)
  Alcotest.check tm "set 0 = bot" TM.bot (TM.set "x" Rat.zero TM.bot);
  Alcotest.check tm "overwrite to 0 erases" TM.bot (TM.set "x" Rat.zero m)

let test_timemap_join () =
  let a = TM.set "x" (t 3) (TM.set "y" (t 1) TM.bot) in
  let b = TM.set "x" (t 2) (TM.set "z" (t 5) TM.bot) in
  let j = TM.join a b in
  Alcotest.check rat "x max" (t 3) (TM.get "x" j);
  Alcotest.check rat "y kept" (t 1) (TM.get "y" j);
  Alcotest.check rat "z kept" (t 5) (TM.get "z" j);
  Alcotest.(check bool) "a <= join" true (TM.le a j);
  Alcotest.(check bool) "b <= join" true (TM.le b j);
  Alcotest.(check bool) "join not <= a" false (TM.le j a)

let test_view_join_le () =
  let v1 =
    { Ps.View.na = TM.set "x" (t 1) TM.bot; rlx = TM.set "x" (t 2) TM.bot }
  in
  let v2 =
    { Ps.View.na = TM.set "y" (t 3) TM.bot; rlx = TM.set "y" (t 3) TM.bot }
  in
  let j = Ps.View.join v1 v2 in
  Alcotest.(check bool) "v1 <= j" true (Ps.View.le v1 j);
  Alcotest.(check bool) "v2 <= j" true (Ps.View.le v2 j);
  Alcotest.check view "join bot right" v1 (Ps.View.join v1 Ps.View.bot)

let test_read_ts_by_mode () =
  let v =
    { Ps.View.na = TM.set "x" (t 1) TM.bot; rlx = TM.set "x" (t 4) TM.bot }
  in
  Alcotest.check rat "na reads bound by Tna" (t 1)
    (Ps.View.read_ts Lang.Modes.Na "x" v);
  Alcotest.check rat "rlx bound by Trlx" (t 4)
    (Ps.View.read_ts Lang.Modes.Rlx "x" v);
  Alcotest.check rat "acq bound by Trlx" (t 4)
    (Ps.View.read_ts Lang.Modes.Acq "x" v)

(* The paper's read rule: a non-atomic read updates Trlx only; an
   atomic read updates both maps. *)
let test_observe_read () =
  let v = Ps.View.bot in
  let v_na = Ps.View.observe_read Lang.Modes.Na "x" (t 5) v in
  Alcotest.check rat "na read leaves Tna" Rat.zero (TM.get "x" v_na.Ps.View.na);
  Alcotest.check rat "na read bumps Trlx" (t 5) (TM.get "x" v_na.Ps.View.rlx);
  let v_rlx = Ps.View.observe_read Lang.Modes.Rlx "x" (t 5) v in
  Alcotest.check rat "rlx read bumps Tna" (t 5) (TM.get "x" v_rlx.Ps.View.na);
  Alcotest.check rat "rlx read bumps Trlx" (t 5) (TM.get "x" v_rlx.Ps.View.rlx);
  (* reads never lower a view *)
  let v_hi = Ps.View.observe_read Lang.Modes.Rlx "x" (t 2) v_rlx in
  Alcotest.check view "no downgrade" v_rlx v_hi

let test_observe_write () =
  let v = Ps.View.observe_write "x" (t 7) Ps.View.bot in
  Alcotest.check rat "write bumps Tna" (t 7) (TM.get "x" v.Ps.View.na);
  Alcotest.check rat "write bumps Trlx" (t 7) (TM.get "x" v.Ps.View.rlx)

(* ------------------------------------------------------------------ *)
(* Properties *)

let tm_gen =
  QCheck.make
    ~print:(fun m -> Format.asprintf "%a" TM.pp m)
    QCheck.Gen.(
      map
        (fun l ->
          List.fold_left
            (fun m (i, n) ->
              TM.set (Printf.sprintf "v%d" i) (Rat.of_int n) m)
            TM.bot l)
        (list_size (int_range 0 6) (pair (int_range 0 4) (int_range 0 20))))

let props =
  [
    QCheck.Test.make ~count:300 ~name:"join commutative"
      (QCheck.pair tm_gen tm_gen) (fun (a, b) ->
        TM.equal (TM.join a b) (TM.join b a));
    QCheck.Test.make ~count:300 ~name:"join associative"
      (QCheck.triple tm_gen tm_gen tm_gen) (fun (a, b, c) ->
        TM.equal (TM.join (TM.join a b) c) (TM.join a (TM.join b c)));
    QCheck.Test.make ~count:300 ~name:"join idempotent" tm_gen (fun a ->
        TM.equal (TM.join a a) a);
    QCheck.Test.make ~count:300 ~name:"join is lub"
      (QCheck.pair tm_gen tm_gen) (fun (a, b) ->
        let j = TM.join a b in
        TM.le a j && TM.le b j);
    QCheck.Test.make ~count:300 ~name:"le antisymmetric"
      (QCheck.pair tm_gen tm_gen) (fun (a, b) ->
        if TM.le a b && TM.le b a then TM.equal a b else true);
  ]

let () =
  Alcotest.run "view"
    [
      ( "timemap",
        [
          Alcotest.test_case "basics" `Quick test_timemap_basics;
          Alcotest.test_case "join" `Quick test_timemap_join;
        ] );
      ( "view",
        [
          Alcotest.test_case "join/le" `Quick test_view_join_le;
          Alcotest.test_case "read_ts by mode" `Quick test_read_ts_by_mode;
          Alcotest.test_case "observe_read" `Quick test_observe_read;
          Alcotest.test_case "observe_write" `Quick test_observe_write;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
