(* The PS2.1 thread-step relation: reads, writes, CAS, fences,
   promises, fulfillment (Sec. 3). *)

open Lang.Modes

let rat = Alcotest.testable Rat.pp Rat.equal
let t n = Rat.of_int n

(* A one-thread code heap around the given straight-line body. *)
let code_of instrs =
  Lang.Ast.code_of_list
    [ ("f", Lang.Ast.codeheap ~entry:"L" [ ("L", Lang.Ast.block instrs Lang.Ast.Return) ]) ]

let state instrs vars =
  let code = code_of instrs in
  let ts = Option.get (Ps.Thread.init code "f") in
  (code, ts, Ps.Memory.init vars)

let steps_of code ts mem = Ps.Thread.steps ~code ts mem

let events steps =
  List.map (fun (s : Ps.Thread.step) -> s.Ps.Thread.event) steps

(* ------------------------------------------------------------------ *)

let test_read_enumerates_messages () =
  let code, ts, mem = state [ Lang.Ast.Load ("r", "x", Rlx) ] [ "x" ] in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:7 ~from_:(t 1) ~to_:(t 2)
         ~view:Ps.View.bot)
      mem
  in
  let ss = steps_of code ts mem in
  let vals =
    List.filter_map
      (function Ps.Event.Rd (Rlx, "x", v) -> Some v | _ -> None)
      (events ss)
  in
  Alcotest.(check (slist int compare)) "reads 0 or 7" [ 0; 7 ] vals

let test_read_respects_view () =
  let code, ts, mem = state [ Lang.Ast.Load ("r", "x", Rlx) ] [ "x" ] in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:7 ~from_:(t 1) ~to_:(t 2)
         ~view:Ps.View.bot)
      mem
  in
  let ts =
    { ts with Ps.Thread.view = Ps.View.observe_write "x" (t 2) ts.Ps.Thread.view }
  in
  let vals =
    List.filter_map
      (function Ps.Event.Rd (_, _, v) -> Some v | _ -> None)
      (events (steps_of code ts mem))
  in
  Alcotest.(check (list int)) "only the new message" [ 7 ] vals

let test_na_read_updates_trlx_only () =
  let code, ts, mem = state [ Lang.Ast.Load ("r", "x", Na) ] [ "x" ] in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:7 ~from_:(t 1) ~to_:(t 2)
         ~view:Ps.View.bot)
      mem
  in
  let s =
    List.find
      (fun (s : Ps.Thread.step) -> s.Ps.Thread.event = Ps.Event.Rd (Na, "x", 7))
      (steps_of code ts mem)
  in
  let v = s.Ps.Thread.ts.Ps.Thread.view in
  Alcotest.check rat "Tna unchanged" Rat.zero (Ps.View.TimeMap.get "x" v.Ps.View.na);
  Alcotest.check rat "Trlx bumped" (t 2) (Ps.View.TimeMap.get "x" v.Ps.View.rlx)

let test_write_updates_both_views () =
  let code, ts, mem = state [ Lang.Ast.Store ("x", Lang.Ast.Val 3, WNa) ] [ "x" ] in
  let s = List.hd (steps_of code ts mem) in
  (match s.Ps.Thread.event with
  | Ps.Event.Wr (WNa, "x", 3) -> ()
  | e -> Alcotest.failf "unexpected event %a" Ps.Event.pp_te e);
  let v = s.Ps.Thread.ts.Ps.Thread.view in
  let written = Ps.View.TimeMap.get "x" v.Ps.View.na in
  Alcotest.(check bool) "Tna bumped" true (Rat.gt written Rat.zero);
  Alcotest.check rat "Tna = Trlx" written (Ps.View.TimeMap.get "x" v.Ps.View.rlx);
  (* the new message is in memory with bottom view (na write) *)
  match Ps.Memory.find "x" written s.Ps.Thread.mem with
  | Some m -> Alcotest.(check bool) "bot view" true
                (Ps.View.equal (Option.get (Ps.Message.view m)) Ps.View.bot)
  | None -> Alcotest.fail "message not in memory"

let test_release_write_carries_view () =
  let code, ts, mem =
    state
      [ Lang.Ast.Store ("y", Lang.Ast.Val 1, WNa);
        Lang.Ast.Store ("x", Lang.Ast.Val 1, WRel) ]
      [ "x"; "y" ]
  in
  (* step the na write first *)
  let s1 = List.hd (steps_of code ts mem) in
  let s2 =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Wr (WRel, "x", 1) -> true | _ -> false)
      (steps_of code s1.Ps.Thread.ts s1.Ps.Thread.mem)
  in
  let xts = Ps.View.TimeMap.get "x" s2.Ps.Thread.ts.Ps.Thread.view.Ps.View.rlx in
  match Ps.Memory.find "x" xts s2.Ps.Thread.mem with
  | Some m ->
      let mv = Option.get (Ps.Message.view m) in
      Alcotest.(check bool) "message view records y" true
        (Rat.gt (Ps.View.TimeMap.get "y" mv.Ps.View.na) Rat.zero)
  | None -> Alcotest.fail "release message missing"

let test_acquire_read_joins_message_view () =
  let code, ts, mem = state [ Lang.Ast.Load ("r", "x", Acq) ] [ "x"; "y" ] in
  let mview = Ps.View.observe_write "y" (t 9) Ps.View.bot in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view:mview)
      mem
  in
  let s =
    List.find
      (fun (s : Ps.Thread.step) -> s.Ps.Thread.event = Ps.Event.Rd (Acq, "x", 1))
      (steps_of code ts mem)
  in
  Alcotest.check rat "acq joins Tna(y)" (t 9)
    (Ps.View.TimeMap.get "y" s.Ps.Thread.ts.Ps.Thread.view.Ps.View.na)

let test_rlx_read_does_not_join () =
  let code, ts, mem = state [ Lang.Ast.Load ("r", "x", Rlx) ] [ "x"; "y" ] in
  let mview = Ps.View.observe_write "y" (t 9) Ps.View.bot in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view:mview)
      mem
  in
  let s =
    List.find
      (fun (s : Ps.Thread.step) -> s.Ps.Thread.event = Ps.Event.Rd (Rlx, "x", 1))
      (steps_of code ts mem)
  in
  Alcotest.check rat "rlx does not join Tna(y)" Rat.zero
    (Ps.View.TimeMap.get "y" s.Ps.Thread.ts.Ps.Thread.view.Ps.View.na);
  (* ... but an acquire fence afterwards does (vacq accumulated). *)
  Alcotest.check rat "vacq recorded y" (t 9)
    (Ps.View.TimeMap.get "y" s.Ps.Thread.ts.Ps.Thread.vacq.Ps.View.na)

let test_acq_fence_folds_vacq () =
  let code, ts, mem =
    state [ Lang.Ast.Load ("r", "x", Rlx); Lang.Ast.Fence FAcq ] [ "x"; "y" ]
  in
  let mview = Ps.View.observe_write "y" (t 9) Ps.View.bot in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view:mview)
      mem
  in
  let s =
    List.find
      (fun (s : Ps.Thread.step) -> s.Ps.Thread.event = Ps.Event.Rd (Rlx, "x", 1))
      (steps_of code ts mem)
  in
  let s2 = List.hd (steps_of code s.Ps.Thread.ts s.Ps.Thread.mem) in
  Alcotest.(check bool) "fence event" true
    (s2.Ps.Thread.event = Ps.Event.Fnc FAcq);
  Alcotest.check rat "acq fence folds y into Tna" (t 9)
    (Ps.View.TimeMap.get "y" s2.Ps.Thread.ts.Ps.Thread.view.Ps.View.na)

let test_rel_fence_then_rlx_write () =
  let code, ts, mem =
    state
      [ Lang.Ast.Store ("y", Lang.Ast.Val 1, WNa);
        Lang.Ast.Fence FRel;
        Lang.Ast.Store ("x", Lang.Ast.Val 1, WRlx) ]
      [ "x"; "y" ]
  in
  let s1 = List.hd (steps_of code ts mem) in
  let s2 = List.hd (steps_of code s1.Ps.Thread.ts s1.Ps.Thread.mem) in
  Alcotest.(check bool) "rel fence" true (s2.Ps.Thread.event = Ps.Event.Fnc FRel);
  let s3 =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Wr (WRlx, "x", 1) -> true | _ -> false)
      (steps_of code s2.Ps.Thread.ts s2.Ps.Thread.mem)
  in
  let xts = Ps.View.TimeMap.get "x" s3.Ps.Thread.ts.Ps.Thread.view.Ps.View.rlx in
  match Ps.Memory.find "x" xts s3.Ps.Thread.mem with
  | Some m ->
      let mv = Option.get (Ps.Message.view m) in
      Alcotest.(check bool) "rlx write after rel fence synchronizes" true
        (Rat.gt (Ps.View.TimeMap.get "y" mv.Ps.View.na) Rat.zero)
  | None -> Alcotest.fail "message missing"

let test_release_sequence_rlx_write () =
  (* After a release write to x, a later relaxed write to x carries
     the release view (release sequence). *)
  let code, ts, mem =
    state
      [ Lang.Ast.Store ("y", Lang.Ast.Val 1, WNa);
        Lang.Ast.Store ("x", Lang.Ast.Val 1, WRel);
        Lang.Ast.Store ("x", Lang.Ast.Val 2, WRlx) ]
      [ "x"; "y" ]
  in
  let s1 = List.hd (steps_of code ts mem) in
  let s2 =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Wr (WRel, _, _) -> true | _ -> false)
      (steps_of code s1.Ps.Thread.ts s1.Ps.Thread.mem)
  in
  Alcotest.(check bool) "vrel_loc records x" true
    (Lang.Ast.VarMap.mem "x" s2.Ps.Thread.ts.Ps.Thread.vrel_loc);
  let s3 =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Wr (WRlx, _, 2) -> true | _ -> false)
      (steps_of code s2.Ps.Thread.ts s2.Ps.Thread.mem)
  in
  let xts = Ps.View.TimeMap.get "x" s3.Ps.Thread.ts.Ps.Thread.view.Ps.View.rlx in
  (match Ps.Memory.find "x" xts s3.Ps.Thread.mem with
  | Some m ->
      let mv = Option.get (Ps.Message.view m) in
      Alcotest.(check bool) "relaxed write carries the release view" true
        (Rat.gt (Ps.View.TimeMap.get "y" mv.Ps.View.na) Rat.zero)
  | None -> Alcotest.fail "message missing");
  (* ... but a relaxed write to a DIFFERENT location does not *)
  ()

let test_release_sequence_other_loc_untouched () =
  let code, ts, mem =
    state
      [ Lang.Ast.Store ("y", Lang.Ast.Val 1, WNa);
        Lang.Ast.Store ("x", Lang.Ast.Val 1, WRel);
        Lang.Ast.Store ("z", Lang.Ast.Val 2, WRlx) ]
      [ "x"; "y"; "z" ]
  in
  let s1 = List.hd (steps_of code ts mem) in
  let s2 =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Wr (WRel, _, _) -> true | _ -> false)
      (steps_of code s1.Ps.Thread.ts s1.Ps.Thread.mem)
  in
  let s3 =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Wr (WRlx, "z", _) -> true | _ -> false)
      (steps_of code s2.Ps.Thread.ts s2.Ps.Thread.mem)
  in
  let zts = Ps.View.TimeMap.get "z" s3.Ps.Thread.ts.Ps.Thread.view.Ps.View.rlx in
  match Ps.Memory.find "z" zts s3.Ps.Thread.mem with
  | Some m ->
      Alcotest.(check bool) "no release sequence across locations" true
        (Ps.View.equal (Option.get (Ps.Message.view m)) Ps.View.bot)
  | None -> Alcotest.fail "message missing"

let test_cas_inherits_read_view () =
  (* The update's message view includes the view of the message it
     reads from: release sequences through RMWs. *)
  let code, ts, mem =
    state [ Lang.Ast.Cas ("r", "x", Lang.Ast.Val 1, Lang.Ast.Val 2, Rlx, WRlx) ]
      [ "x"; "y" ]
  in
  let rel_view = Ps.View.observe_write "y" (t 9) Ps.View.bot in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view:rel_view)
      mem
  in
  let su =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with Ps.Event.Upd _ -> true | _ -> false)
      (steps_of code ts mem)
  in
  let xts = Ps.View.TimeMap.get "x" su.Ps.Thread.ts.Ps.Thread.view.Ps.View.rlx in
  match Ps.Memory.find "x" xts su.Ps.Thread.mem with
  | Some m ->
      let mv = Option.get (Ps.Message.view m) in
      Alcotest.check rat "update inherits y@9" (t 9)
        (Ps.View.TimeMap.get "y" mv.Ps.View.na)
  | None -> Alcotest.fail "update message missing"

let test_cas_success_and_failure () =
  let code, ts, mem =
    state [ Lang.Ast.Cas ("r", "x", Lang.Ast.Val 0, Lang.Ast.Val 5, Rlx, WRlx) ] [ "x" ]
  in
  let ss = steps_of code ts mem in
  (* only the initial 0 is readable: CAS can succeed *)
  let upd =
    List.filter
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with
        | Ps.Event.Upd (Rlx, WRlx, "x", 0, 5) -> true
        | _ -> false)
      ss
  in
  Alcotest.(check int) "one success step" 1 (List.length upd);
  let su = List.hd upd in
  Alcotest.(check int) "r = 1" 1 (Ps.Local.reg "r" su.Ps.Thread.ts.Ps.Thread.local);
  (* its message attaches: from = 0 *)
  let xts = Ps.View.TimeMap.get "x" su.Ps.Thread.ts.Ps.Thread.view.Ps.View.rlx in
  (match Ps.Memory.find "x" xts su.Ps.Thread.mem with
  | Some m -> Alcotest.check rat "adjacent from" Rat.zero (Ps.Message.from_ m)
  | None -> Alcotest.fail "CAS message missing");
  (* failure branch: memory with a non-matching value *)
  let mem2 =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:3 ~from_:(t 1) ~to_:(t 2) ~view:Ps.View.bot)
      mem
  in
  let ss2 = steps_of code ts mem2 in
  let failures =
    List.filter
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.event with
        | Ps.Event.Rd (Rlx, "x", 3) ->
            Ps.Local.reg "r" s.Ps.Thread.ts.Ps.Thread.local = 0
        | _ -> false)
      ss2
  in
  Alcotest.(check int) "failure reads 3, r = 0" 1 (List.length failures)

let test_cas_blocked_by_adjacent () =
  let code, ts, mem =
    state [ Lang.Ast.Cas ("r", "x", Lang.Ast.Val 0, Lang.Ast.Val 5, Rlx, WRlx) ] [ "x" ]
  in
  (* occupy the interval right after the init message *)
  let mem = Ps.Memory.add_exn (Ps.Message.rsv ~var:"x" ~from_:Rat.zero ~to_:(t 1)) mem in
  let ss = steps_of code ts mem in
  Alcotest.(check bool) "no success possible" true
    (List.for_all
       (fun (s : Ps.Thread.step) ->
         match s.Ps.Thread.event with Ps.Event.Upd _ -> false | _ -> true)
       ss)

let test_promise_and_fulfill () =
  let code, ts, mem = state [ Lang.Ast.Store ("x", Lang.Ast.Val 5, WNa) ] [ "x" ] in
  let ps =
    Ps.Thread.promise_steps ~candidates:[ ("x", 5) ]
      ~atomics:Lang.Ast.VarSet.empty ts mem
  in
  Alcotest.(check bool) "promise steps exist" true (ps <> []);
  let p = List.hd ps in
  Alcotest.(check int) "one promise" 1
    (List.length (Ps.Thread.concrete_promises p.Ps.Thread.ts));
  Alcotest.(check bool) "promised message in memory" true
    (Ps.Memory.contains
       (List.hd (Ps.Thread.concrete_promises p.Ps.Thread.ts))
       p.Ps.Thread.mem);
  (* the store instruction can now fulfill it *)
  let fulfill =
    List.filter
      (fun (s : Ps.Thread.step) ->
        s.Ps.Thread.event = Ps.Event.Wr (WNa, "x", 5)
        && Ps.Thread.concrete_promises s.Ps.Thread.ts = [])
      (steps_of code p.Ps.Thread.ts p.Ps.Thread.mem)
  in
  Alcotest.(check bool) "fulfillment step exists" true (fulfill <> []);
  (* fulfillment does not duplicate the message *)
  let f = List.hd fulfill in
  Alcotest.(check int) "memory unchanged modulo promise" 2
    (List.length (Ps.Memory.per_loc "x" f.Ps.Thread.mem))

let test_promise_wrong_value_no_fulfill () =
  let code, ts, mem = state [ Lang.Ast.Store ("x", Lang.Ast.Val 5, WNa) ] [ "x" ] in
  let p =
    List.hd
      (Ps.Thread.promise_steps ~candidates:[ ("x", 9) ]
         ~atomics:Lang.Ast.VarSet.empty ts mem)
  in
  let fulfills =
    List.filter
      (fun (s : Ps.Thread.step) -> Ps.Thread.concrete_promises s.Ps.Thread.ts = [])
      (steps_of code p.Ps.Thread.ts p.Ps.Thread.mem)
  in
  Alcotest.(check (list int)) "no fulfillment of a 9-promise by a 5-write" []
    (List.map (fun _ -> 0) fulfills)

let test_release_write_blocked_by_promise () =
  let code, ts, mem = state [ Lang.Ast.Store ("x", Lang.Ast.Val 5, WRel) ] [ "x" ] in
  let p =
    List.hd
      (Ps.Thread.promise_steps ~candidates:[ ("x", 5) ]
         ~atomics:Lang.Ast.VarSet.empty ts mem)
  in
  let ss = steps_of code p.Ps.Thread.ts p.Ps.Thread.mem in
  Alcotest.(check (list int)) "release write blocked while promise on x" []
    (List.map (fun _ -> 0) ss)

let test_reserve_cancel () =
  let _, ts, mem = state [ Lang.Ast.Skip ] [ "x" ] in
  let rs = Ps.Thread.reserve_steps ts mem in
  Alcotest.(check bool) "reserve step exists" true (rs <> []);
  let r = List.hd rs in
  Alcotest.(check int) "reservation in promise set" 1
    (List.length r.Ps.Thread.ts.Ps.Thread.prm);
  let cs = Ps.Thread.cancel_steps r.Ps.Thread.ts r.Ps.Thread.mem in
  Alcotest.(check int) "cancel step" 1 (List.length cs);
  let c = List.hd cs in
  Alcotest.(check (list int)) "promise set empty after cancel" []
    (List.map (fun _ -> 0) c.Ps.Thread.ts.Ps.Thread.prm);
  Alcotest.(check int) "memory back to init" 1
    (List.length (Ps.Memory.per_loc "x" c.Ps.Thread.mem))

let test_control_flow_steps () =
  let code =
    Lang.Ast.code_of_list
      [
        ( "f",
          Lang.Ast.codeheap ~entry:"A"
            [
              ("A", Lang.Ast.block [ Lang.Ast.Assign ("r", Lang.Ast.Val 1) ]
                      (Lang.Ast.Be (Lang.Ast.Reg "r", "B", "C")));
              ("B", Lang.Ast.block [] (Lang.Ast.Call ("g", "C")));
              ("C", Lang.Ast.block [] Lang.Ast.Return);
            ] );
        ("g", Lang.Ast.codeheap ~entry:"G" [ ("G", Lang.Ast.block [] Lang.Ast.Return) ]);
      ]
  in
  let ts = Option.get (Ps.Thread.init code "f") in
  let mem = Ps.Memory.init [] in
  let step1 = List.hd (Ps.Thread.steps ~code ts mem) in
  (* assign *)
  let step2 = List.hd (Ps.Thread.steps ~code step1.Ps.Thread.ts mem) in
  (* branch to B (r = 1) *)
  let step3 = List.hd (Ps.Thread.steps ~code step2.Ps.Thread.ts mem) in
  (* call g *)
  let step4 = List.hd (Ps.Thread.steps ~code step3.Ps.Thread.ts mem) in
  (* return from g -> C *)
  let step5 = List.hd (Ps.Thread.steps ~code step4.Ps.Thread.ts mem) in
  (* return from f -> finished *)
  Alcotest.(check bool) "finished" true (Ps.Local.is_finished step5.Ps.Thread.ts.Ps.Thread.local);
  Alcotest.(check bool) "terminal" true (Ps.Thread.is_terminal step5.Ps.Thread.ts);
  Alcotest.(check (list int)) "no more steps" []
    (List.map (fun _ -> 0) (Ps.Thread.steps ~code step5.Ps.Thread.ts mem))

let test_writes_in_code () =
  let code =
    Lang.Ast.code_of_list
      [
        ( "f",
          Lang.Ast.codeheap ~entry:"A"
            [
              ("A", Lang.Ast.block
                      [ Lang.Ast.Store ("x", Lang.Ast.Val 1, WNa);
                        Lang.Ast.Store ("y", Lang.Ast.Reg "r", WNa);
                        Lang.Ast.Store ("z", Lang.Ast.Val 2, WRel) ]
                      (Lang.Ast.Call ("g", "A")));
            ] );
        ( "g",
          Lang.Ast.codeheap ~entry:"G"
            [ ("G", Lang.Ast.block [ Lang.Ast.Store ("w", Lang.Ast.Val 3, WRlx) ]
                      Lang.Ast.Return) ] );
      ]
  in
  let ts = Option.get (Ps.Thread.init code "f") in
  Alcotest.(check (slist (pair string int) compare))
    "constant na/rlx stores, callees included"
    [ ("w", 3); ("x", 1) ]
    (Ps.Thread.writes_in_code ~code ts)

let () =
  Alcotest.run "thread"
    [
      ( "reads",
        [
          Alcotest.test_case "enumerate messages" `Quick
            test_read_enumerates_messages;
          Alcotest.test_case "view bound" `Quick test_read_respects_view;
          Alcotest.test_case "na updates Trlx only" `Quick
            test_na_read_updates_trlx_only;
          Alcotest.test_case "acq joins message view" `Quick
            test_acquire_read_joins_message_view;
          Alcotest.test_case "rlx does not join" `Quick test_rlx_read_does_not_join;
        ] );
      ( "writes",
        [
          Alcotest.test_case "updates both views" `Quick
            test_write_updates_both_views;
          Alcotest.test_case "release carries view" `Quick
            test_release_write_carries_view;
        ] );
      ( "fences",
        [
          Alcotest.test_case "acq fence folds vacq" `Quick
            test_acq_fence_folds_vacq;
          Alcotest.test_case "rel fence + rlx write" `Quick
            test_rel_fence_then_rlx_write;
        ] );
      ( "cas",
        [
          Alcotest.test_case "success and failure" `Quick
            test_cas_success_and_failure;
          Alcotest.test_case "blocked by adjacency" `Quick
            test_cas_blocked_by_adjacent;
          Alcotest.test_case "inherits read view" `Quick
            test_cas_inherits_read_view;
        ] );
      ( "release-sequences",
        [
          Alcotest.test_case "rlx write carries release view" `Quick
            test_release_sequence_rlx_write;
          Alcotest.test_case "per-location only" `Quick
            test_release_sequence_other_loc_untouched;
        ] );
      ( "promises",
        [
          Alcotest.test_case "promise and fulfill" `Quick
            test_promise_and_fulfill;
          Alcotest.test_case "wrong value cannot fulfill" `Quick
            test_promise_wrong_value_no_fulfill;
          Alcotest.test_case "release blocked by promise" `Quick
            test_release_write_blocked_by_promise;
          Alcotest.test_case "reserve/cancel" `Quick test_reserve_cancel;
        ] );
      ( "control",
        [
          Alcotest.test_case "branch/call/return" `Quick test_control_flow_steps;
          Alcotest.test_case "writes_in_code" `Quick test_writes_in_code;
        ] );
    ]
