(* The non-preemptive machine's switch-bit rules (Fig. 10) and event
   classification, unit level. *)

open Ps.Event

let te_na_read = Rd (Lang.Modes.Na, "x", 0)
let te_na_write = Wr (Lang.Modes.WNa, "x", 1)
let te_rlx_read = Rd (Lang.Modes.Rlx, "x", 0)
let te_acq_read = Rd (Lang.Modes.Acq, "x", 0)
let te_rlx_write = Wr (Lang.Modes.WRlx, "x", 1)
let te_rel_write = Wr (Lang.Modes.WRel, "x", 1)
let te_upd = Upd (Lang.Modes.Rlx, Lang.Modes.WRlx, "x", 0, 1)

let test_classification () =
  let check te cls name =
    Alcotest.(check bool) name true (classify te = cls)
  in
  check Tau NA "tau is NA";
  check te_na_read NA "na read is NA";
  check te_na_write NA "na write is NA";
  check te_rlx_read AT "rlx read is AT";
  check te_acq_read AT "acq read is AT";
  check te_rlx_write AT "rlx write is AT";
  check te_rel_write AT "rel write is AT";
  check te_upd AT "update is AT";
  check (Out 3) AT "output is AT";
  check (Fnc Lang.Modes.FAcq) AT "fence is AT";
  check Prm PRC "promise is PRC";
  check Rsv PRC "reserve is PRC";
  check Ccl PRC "cancel is PRC"

let test_bit_rules () =
  let bit te before = Npsem.bit_after te ~before in
  (* NA steps turn the bit off, from either state *)
  Alcotest.(check (option bool)) "na from on" (Some false) (bit te_na_read true);
  Alcotest.(check (option bool)) "na from off" (Some false) (bit te_na_write false);
  Alcotest.(check (option bool)) "tau from on" (Some false) (bit Tau true);
  (* AT steps turn it on *)
  Alcotest.(check (option bool)) "at from off" (Some true) (bit te_rel_write false);
  Alcotest.(check (option bool)) "at from on" (Some true) (bit te_acq_read true);
  Alcotest.(check (option bool)) "out from off" (Some true) (bit (Out 1) false);
  (* promise/reserve need the bit on, keep it on *)
  Alcotest.(check (option bool)) "prm needs on" None (bit Prm false);
  Alcotest.(check (option bool)) "prm keeps on" (Some true) (bit Prm true);
  Alcotest.(check (option bool)) "rsv needs on" None (bit Rsv false);
  (* cancel allowed anywhere, preserves the bit *)
  Alcotest.(check (option bool)) "ccl off" (Some false) (bit Ccl false);
  Alcotest.(check (option bool)) "ccl on" (Some true) (bit Ccl true)

let test_init_and_switch () =
  match Npsem.init Litmus.sb.Litmus.prog with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check bool) "starts switchable" true (Npsem.may_switch t);
      let t' = { t with Npsem.switchable = false } in
      Alcotest.(check bool) "bit off blocks" false (Npsem.may_switch t');
      Alcotest.(check bool) "compare distinguishes the bit" true
        (Npsem.compare t t' <> 0);
      Alcotest.(check bool) "equal reflexive" true (Npsem.equal t t)

(* A thread ending in a block of non-atomic accesses: under the
   non-preemptive machine the block runs uninterrupted, but the
   behaviours still match the interleaving machine (the E17
   mechanisms: promises before the block + free read choices). *)
let test_na_block_uninterrupted_yet_equivalent () =
  let p = Litmus.fig16_src.Litmus.prog in
  Alcotest.(check bool) "equivalent" true
    (Explore.Refine.equivalent_disciplines p)

let () =
  Alcotest.run "npsem"
    [
      ( "rules",
        [
          Alcotest.test_case "classification" `Quick test_classification;
          Alcotest.test_case "switch-bit transitions" `Quick test_bit_rules;
          Alcotest.test_case "init/switch" `Quick test_init_and_switch;
          Alcotest.test_case "na block equivalence" `Quick
            test_na_block_uninterrupted_yet_equivalent;
        ] );
    ]
