(* The thread-local simulation machinery (Sec. 6): timestamp mappings,
   invariants, the delayed write set and the simulation game. *)

let rat = Alcotest.testable Rat.pp Rat.equal
let t n = Rat.of_int n

(* ------------------------------------------------------------------ *)
(* Tmap *)

let test_tmap_basics () =
  let phi = Sim.Tmap.init [ "x"; "y" ] in
  Alcotest.(check (option rat |> fun t -> t)) "phi0 maps (x,0) to 0"
    (Some Rat.zero)
    (Sim.Tmap.find "x" Rat.zero phi);
  let phi = Sim.Tmap.add "x" (t 1) (t 2) phi in
  Alcotest.(check (option rat)) "added" (Some (t 2)) (Sim.Tmap.find "x" (t 1) phi);
  Alcotest.(check (option rat)) "missing" None (Sim.Tmap.find "y" (t 1) phi)

let test_tmap_mon () =
  let phi = Sim.Tmap.add "x" (t 1) (t 5) (Sim.Tmap.init [ "x" ]) in
  Alcotest.(check bool) "monotone" true (Sim.Tmap.mon phi);
  let bad = Sim.Tmap.add "x" (t 2) (t 3) (Sim.Tmap.add "x" (t 1) (t 5) Sim.Tmap.empty) in
  Alcotest.(check bool) "violation detected" false (Sim.Tmap.mon bad);
  (* different locations never interact *)
  let ok = Sim.Tmap.add "y" (t 2) (t 3) (Sim.Tmap.add "x" (t 1) (t 5) Sim.Tmap.empty) in
  Alcotest.(check bool) "cross-location fine" true (Sim.Tmap.mon ok)

let test_tmap_dom_image () =
  let mem = Ps.Memory.init [ "x" ] in
  let mem =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view:Ps.View.bot)
      mem
  in
  let phi = Sim.Tmap.add "x" (t 2) (t 2) (Sim.Tmap.init [ "x" ]) in
  Alcotest.(check bool) "dom covers" true (Sim.Tmap.dom_covers mem phi);
  Alcotest.(check bool) "image in" true (Sim.Tmap.image_in mem phi);
  Alcotest.(check bool) "identity" true (Sim.Tmap.is_identity_on mem phi);
  (* a mapping entry pointing at a non-message breaks image_in *)
  let phi_bad = Sim.Tmap.add "x" (t 2) (t 9) (Sim.Tmap.init [ "x" ]) in
  Alcotest.(check bool) "image violated" false (Sim.Tmap.image_in mem phi_bad);
  (* incomplete domain *)
  Alcotest.(check bool) "dom incomplete" false
    (Sim.Tmap.dom_covers mem (Sim.Tmap.init [ "x" ]))

(* ------------------------------------------------------------------ *)
(* Invariants *)

let test_iid () =
  let m = Ps.Memory.init [ "x" ] in
  let phi = Sim.Tmap.init [ "x" ] in
  Alcotest.(check bool) "holds initially" true
    (Sim.Invariant.iid.Sim.Invariant.holds phi (m, m) Lang.Ast.VarSet.empty);
  Alcotest.(check bool) "wf_initial" true
    (Sim.Invariant.wf_initial Sim.Invariant.iid [ "x" ] Lang.Ast.VarSet.empty);
  let m2 =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view:Ps.View.bot)
      m
  in
  Alcotest.(check bool) "different memories: fails" false
    (Sim.Invariant.iid.Sim.Invariant.holds phi (m2, m) Lang.Ast.VarSet.empty)

let test_idce_gap () =
  (* Fig. 16(c): the target message must map to a source message with
     an open gap before it. *)
  let msg v f to_ =
    Ps.Message.msg ~var:"x" ~value:v ~from_:(t f) ~to_:(t to_) ~view:Ps.View.bot
  in
  let mt = Ps.Memory.add_exn (msg 2 1 2) (Ps.Memory.init [ "x" ]) in
  (* source with gap before the related message (2 at (3,4]) *)
  let ms_gap = Ps.Memory.add_exn (msg 2 3 4) (Ps.Memory.init [ "x" ]) in
  let phi = Sim.Tmap.add "x" (t 2) (t 4) (Sim.Tmap.init [ "x" ]) in
  Alcotest.(check bool) "holds with gap" true
    (Sim.Invariant.idce.Sim.Invariant.holds phi (mt, ms_gap)
       Lang.Ast.VarSet.empty);
  (* source whose related message is blocked by an adjacent one *)
  let ms_blocked =
    Ps.Memory.add_exn (msg 2 3 4)
      (Ps.Memory.add_exn (msg 7 1 3) (Ps.Memory.init [ "x" ]))
  in
  Alcotest.(check bool) "fails without the unused interval" false
    (Sim.Invariant.idce.Sim.Invariant.holds phi (mt, ms_blocked)
       Lang.Ast.VarSet.empty);
  (* value mismatch *)
  let ms_val = Ps.Memory.add_exn (msg 9 3 4) (Ps.Memory.init [ "x" ]) in
  Alcotest.(check bool) "fails on value mismatch" false
    (Sim.Invariant.idce.Sim.Invariant.holds phi (mt, ms_val)
       Lang.Ast.VarSet.empty)

let test_messages_related_views () =
  (* a release-write message whose view differs under phi is related
     only when the source view is the phi-image of the target's *)
  let phi = Sim.Tmap.init [ "x"; "y" ] in
  let phi = Sim.Tmap.add "y" (t 1) (t 1) phi in
  let phi = Sim.Tmap.add "x" (t 2) (t 2) phi in
  let view_t = Ps.View.observe_write "y" (t 1) Ps.View.bot in
  let mk view =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"x" ~value:1 ~from_:(t 1) ~to_:(t 2) ~view)
      (Ps.Memory.add_exn
         (Ps.Message.msg ~var:"y" ~value:1 ~from_:(Rat.midpoint Rat.zero Rat.one)
            ~to_:(t 1) ~view:Ps.View.bot)
         (Ps.Memory.init [ "x"; "y" ]))
  in
  let phi_full = Sim.Tmap.add "y" (t 1) (t 1) phi in
  Alcotest.(check bool) "matching views related" true
    (Sim.Invariant.messages_related phi_full (mk view_t, mk view_t));
  Alcotest.(check bool) "mismatched views rejected" false
    (Sim.Invariant.messages_related phi_full (mk view_t, mk Ps.View.bot))

(* ------------------------------------------------------------------ *)
(* Delayed write set *)

let test_delayed () =
  let d = Sim.Delayed.empty in
  Alcotest.(check bool) "empty" true (Sim.Delayed.is_empty d);
  let d = Sim.Delayed.record_target_write "x" (t 1) d in
  let d = Sim.Delayed.record_target_write "x" (t 3) d in
  let d = Sim.Delayed.record_target_write "y" (t 2) d in
  Alcotest.(check int) "size" 3 (Sim.Delayed.size d);
  Alcotest.(check (option rat)) "oldest on x" (Some (t 1))
    (Sim.Delayed.oldest_on "x" d);
  let d = Sim.Delayed.discharge "x" d in
  Alcotest.(check (option rat)) "oldest discharged first" (Some (t 3))
    (Sim.Delayed.oldest_on "x" d);
  let d = Sim.Delayed.discharge "y" d in
  Alcotest.(check (option rat)) "y discharged" None (Sim.Delayed.oldest_on "y" d);
  Alcotest.(check int) "one left" 1 (Sim.Delayed.size d);
  (* discharge on an absent location is a no-op *)
  Alcotest.(check int) "noop discharge" 1
    (Sim.Delayed.size (Sim.Delayed.discharge "zz" d))

let test_delayed_decrease () =
  let d = Sim.Delayed.record_target_write ~index:2 "x" (t 1) Sim.Delayed.empty in
  (match Sim.Delayed.decrease d with
  | Some d1 -> (
      match Sim.Delayed.decrease d1 with
      | Some d2 ->
          Alcotest.(check bool) "exhausted on third decrease" true
            (Sim.Delayed.decrease d2 = None)
      | None -> Alcotest.fail "second decrease should succeed")
  | None -> Alcotest.fail "first decrease should succeed");
  Alcotest.(check bool) "empty always decreases" true
    (Sim.Delayed.decrease Sim.Delayed.empty <> None)

(* ------------------------------------------------------------------ *)
(* Scenarios *)

let test_scenarios () =
  let p = Litmus.fig1_foo.Litmus.prog in
  let ss = Sim.Scenario.of_program p ~except:"foo" in
  Alcotest.(check bool) "non-empty" true (ss <> []);
  (* some scenario contains g's release write of x with its view *)
  Alcotest.(check bool) "release message with payload view present" true
    (List.exists
       (fun sc ->
         List.exists
           (fun m ->
             Ps.Message.var m = "x"
             &&
             match Ps.Message.view m with
             | Some v -> Rat.gt (Ps.View.TimeMap.get "y" v.Ps.View.na) Rat.zero
             | None -> false)
           sc)
       ss);
  (* 'except' excludes the thread itself *)
  let none = Sim.Scenario.of_program p ~except:"g" in
  Alcotest.(check bool) "foo produces no scenario (spins)" true
    (List.for_all (fun sc -> sc <> []) none)

(* ------------------------------------------------------------------ *)
(* The simulation game *)

let lit n = (Litmus.find n).Litmus.prog

let holds = function Sim.Simcheck.Holds -> true | _ -> false
let fails = function Sim.Simcheck.Fails _ -> true | _ -> false

let all_hold rs = List.for_all (fun (_, v) -> holds v) rs

let test_sim_identity () =
  let p = lit "sb" in
  Alcotest.(check bool) "program simulates itself (Iid)" true
    (all_hold (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target:p ~source:p ()))

let test_sim_constprop () =
  let p = lit "sb" in
  let tgt = Opt.Pass.apply Opt.Constprop.pass p in
  Alcotest.(check bool) "constprop simulated with Iid" true
    (all_hold
       (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target:tgt ~source:p ()))

let test_sim_cse () =
  let p = lit "fig5_tgt" in
  let tgt = Opt.Pass.apply Opt.Cse.pass p in
  Alcotest.(check bool) "cse simulated with Iid" true
    (all_hold
       (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target:tgt ~source:p ()))

let test_sim_dce_idce () =
  let p = lit "fig16_src" in
  let tgt = Opt.Pass.apply Opt.Dce.pass p in
  Alcotest.(check bool) "dce simulated with Idce" true
    (all_hold
       (Sim.Simcheck.check_program ~inv:Sim.Invariant.idce ~target:tgt ~source:p ()))

let test_sim_dce_needs_idce () =
  (* with Iid, eliminating a write cannot be simulated: the memories
     must be identical at switch points.  The lockstep source write is
     still possible before the AT point... the final wind-down demands
     Iid over different memories -> fails. *)
  let p = lit "fig16_src" in
  let tgt = Opt.Pass.apply Opt.Dce.pass p in
  let r = Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target:tgt ~source:p () in
  Alcotest.(check bool) "Iid too strong for DCE" true
    (List.exists (fun (f, v) -> f = "t1" && fails v) r)

let test_sim_reorder_delayed () =
  (* Fig. 14(d): the reorder pair needs the delayed write set *)
  Alcotest.(check bool) "reorder simulated" true
    (all_hold
       (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid
          ~target:(lit "reorder_tgt") ~source:(lit "reorder_src") ()))

let test_sim_bad_dce_rejected () =
  let r =
    Sim.Simcheck.check_program ~inv:Sim.Invariant.idce
      ~target:(lit "fig15_bad_tgt") ~source:(lit "fig15_src") ()
  in
  Alcotest.(check bool) "DCE across release fails the AT diagram" true
    (List.exists (fun (f, v) -> f = "t1" && fails v) r)

let test_sim_bad_licm_rejected () =
  let r =
    Sim.Simcheck.check_program ~inv:Sim.Invariant.iid
      ~target:(lit "fig1_foo_opt") ~source:(lit "fig1_foo") ()
  in
  Alcotest.(check bool) "hoist across acquire fails under interference" true
    (List.exists (fun (f, v) -> f = "foo" && fails v) r)

let test_sim_licm_rlx_holds () =
  let src = lit "fig1_foo_rlx" in
  let tgt = Opt.Pass.apply Opt.Licm.pass src in
  Alcotest.(check bool) "licm over relaxed flag simulated" true
    (all_hold
       (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target:tgt
          ~source:src ()))

let test_sim_linv_holds () =
  let src = lit "fig5_src" in
  let tgt = Opt.Pass.apply Opt.Linv.pass src in
  Alcotest.(check bool) "linv (redundant read introduction) simulated" true
    (all_hold
       (Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target:tgt
          ~source:src ()))

(* ------------------------------------------------------------------ *)
(* The Verif(Opt) pipeline (Def. 6.3, Fig. 6) *)

let test_verif_registry () =
  Alcotest.(check int) "seven registered optimizers" 7
    (List.length Sim.Verif.registry);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true
        (Sim.Verif.find name <> None))
    [ "constprop"; "dce"; "cse"; "copyprop"; "linv"; "licm"; "cleanup" ];
  Alcotest.(check bool) "unknown not found" true (Sim.Verif.find "ghost" = None)

let test_verif_pipeline_ok () =
  List.iter
    (fun (pass, prog) ->
      match Sim.Verif.check (Option.get (Sim.Verif.find pass)) (lit prog) with
      | Sim.Verif.Verified -> ()
      | v ->
          Alcotest.failf "%s on %s: %a" pass prog Sim.Verif.pp_verdict v)
    [
      ("constprop", "sb");
      ("dce", "fig16_src");
      ("dce", "fig15_src");
      ("cse", "fig5_tgt");
      ("licm", "fig1_foo_rlx");
      ("linv", "fig5_src");
      ("cleanup", "fig16_tgt");
    ]

let test_verif_requires_ww_rf () =
  (* The theorem's premise: a racy source is rejected up front. *)
  match
    Sim.Verif.check (Option.get (Sim.Verif.find "constprop")) (lit "ww_racy")
  with
  | Sim.Verif.Fail (Sim.Verif.Source_ww_rf, _) -> ()
  | v -> Alcotest.failf "expected ww-RF failure, got %a" Sim.Verif.pp_verdict v

let () =
  Alcotest.run "sim"
    [
      ( "tmap",
        [
          Alcotest.test_case "basics" `Quick test_tmap_basics;
          Alcotest.test_case "monotonicity" `Quick test_tmap_mon;
          Alcotest.test_case "dom/image" `Quick test_tmap_dom_image;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "Iid" `Quick test_iid;
          Alcotest.test_case "Idce unused interval" `Quick test_idce_gap;
          Alcotest.test_case "message views related" `Quick
            test_messages_related_views;
        ] );
      ( "delayed",
        [
          Alcotest.test_case "record/discharge" `Quick test_delayed;
          Alcotest.test_case "well-founded indexes" `Quick test_delayed_decrease;
        ] );
      ("scenarios", [ Alcotest.test_case "derivation" `Quick test_scenarios ]);
      ( "game",
        [
          Alcotest.test_case "identity" `Quick test_sim_identity;
          Alcotest.test_case "constprop holds" `Quick test_sim_constprop;
          Alcotest.test_case "cse holds" `Quick test_sim_cse;
          Alcotest.test_case "dce holds with Idce" `Quick test_sim_dce_idce;
          Alcotest.test_case "dce needs Idce" `Quick test_sim_dce_needs_idce;
          Alcotest.test_case "reorder via delayed writes" `Quick
            test_sim_reorder_delayed;
          Alcotest.test_case "bad DCE rejected" `Quick test_sim_bad_dce_rejected;
          Alcotest.test_case "bad LICM rejected" `Quick
            test_sim_bad_licm_rejected;
          Alcotest.test_case "licm (rlx) holds" `Quick test_sim_licm_rlx_holds;
          Alcotest.test_case "linv holds" `Quick test_sim_linv_holds;
        ] );
      ( "budget",
        [
          Alcotest.test_case "tiny depth yields Unknown, not a verdict"
            `Quick (fun () ->
              let cfg =
                { Sim.Simcheck.default_config with max_depth = 2 }
              in
              let p = lit "fig1_foo_rlx" in
              let r =
                Sim.Simcheck.check_program ~config:cfg
                  ~inv:Sim.Invariant.iid ~target:p ~source:p ()
              in
              Alcotest.(check bool)
                "budget exhaustion is reported honestly" true
                (List.exists
                   (fun (_, v) ->
                     match v with Sim.Simcheck.Unknown _ -> true | _ -> false)
                   r));
        ] );
      ( "verif",
        [
          Alcotest.test_case "registry" `Quick test_verif_registry;
          Alcotest.test_case "pipeline verified" `Slow test_verif_pipeline_ok;
          Alcotest.test_case "ww-RF premise enforced" `Quick
            test_verif_requires_ww_rf;
        ] );
    ]
