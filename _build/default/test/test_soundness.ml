(* Property-based soundness: the paper's main theorems, checked on
   randomly generated two-thread programs (not just the hand-written
   corpus).

   - Theorem 4.1: interleaving and non-preemptive behaviour sets
     coincide.
   - Lemma 5.1: ww-RF and ww-NPRF agree.
   - Theorem 6.6 (executable form): every optimization pass produces a
     refinement of its source.
   - Lemma 6.2 (second conclusion): passes preserve ww-RF.

   Programs are small straight-line threads over two non-atomic
   locations and one atomic flag, each ending in a print of a register
   — enough to exercise reads/writes in all modes, fences and the
   print-order interleavings, while keeping exhaustive exploration
   fast. *)

open Lang.Ast

let instr_gen =
  let open QCheck.Gen in
  let reg = map (Printf.sprintf "r%d") (int_range 0 3) in
  let navar = oneofl [ "x"; "y" ] in
  let value = int_range 0 3 in
  let expr =
    oneof
      [
        map (fun v -> Val v) value;
        map (fun r -> Reg r) reg;
        map2 (fun r v -> Bin (Add, Reg r, Val v)) reg value;
      ]
  in
  frequency
    [
      (3, map2 (fun r x -> Load (r, x, Lang.Modes.Na)) reg navar);
      (3, map2 (fun x e -> Store (x, e, Lang.Modes.WNa)) navar expr);
      (2, map2 (fun r e -> Assign (r, e)) reg expr);
      (1, map (fun r -> Load (r, "f", Lang.Modes.Rlx)) reg);
      (1, map (fun r -> Load (r, "f", Lang.Modes.Acq)) reg);
      (1, map (fun e -> Store ("f", e, Lang.Modes.WRlx)) expr);
      (1, map (fun e -> Store ("f", e, Lang.Modes.WRel)) expr);
      (1, oneofl [ Fence Lang.Modes.FAcq; Fence Lang.Modes.FRel ]);
      (1, return Skip);
    ]

let thread_gen name =
  QCheck.Gen.(
    map
      (fun instrs ->
        let instrs = instrs @ [ Print (Reg "r0") ] in
        (name, codeheap ~entry:"L" [ ("L", block instrs Return) ]))
      (list_size (int_range 1 4) instr_gen))

let program_gen =
  QCheck.Gen.(
    map2
      (fun t1 t2 ->
        program ~atomics:[ "f" ] ~code:[ t1; t2 ] [ "t1"; "t2" ])
      (thread_gen "t1") (thread_gen "t2"))

let arbitrary_program =
  QCheck.make ~print:Lang.Pp.program_to_string program_gen

(* A tighter exploration configuration: random programs are tiny, and
   one promise per thread is where all the interesting weak behaviour
   lives. *)
let config = { Explore.Config.default with max_steps = 300 }

let test_thm41 =
  QCheck.Test.make ~count:40 ~name:"Theorem 4.1 on random programs"
    arbitrary_program (fun p ->
      Explore.Refine.equivalent_disciplines ~config p)

let test_lemma51 =
  QCheck.Test.make ~count:40 ~name:"Lemma 5.1 on random programs"
    arbitrary_program (fun p ->
      let free v = match v with Ok Race.Free -> true | _ -> false in
      free (Race.ww_rf ~config p) = free (Race.ww_nprf ~config p))

let passes =
  [
    Opt.Constprop.pass;
    Opt.Dce.pass;
    Opt.Cse.pass;
    Opt.Copyprop.pass;
    Opt.Linv.pass;
    Opt.Licm.pass;
    Opt.Cleanup.pass;
  ]

let test_passes_refine =
  QCheck.Test.make ~count:30 ~name:"every pass refines on random programs"
    arbitrary_program (fun p ->
      List.for_all
        (fun (pass : Opt.Pass.t) ->
          let tgt = Opt.Pass.apply pass p in
          equal_program tgt p
          || Explore.Refine.refines ~config ~target:tgt ~source:p ())
        passes)

let pipeline =
  List.fold_left Opt.Pass.compose (List.hd passes) (List.tl passes)

let test_pipeline_refines =
  QCheck.Test.make ~count:30 ~name:"the composed pipeline refines"
    arbitrary_program (fun p ->
      let tgt = Opt.Pass.apply pipeline p in
      equal_program tgt p
      || Explore.Refine.refines ~config ~target:tgt ~source:p ())

let test_passes_preserve_wwrf =
  QCheck.Test.make ~count:30 ~name:"passes preserve ww-RF"
    arbitrary_program (fun p ->
      let free q =
        match Race.ww_rf ~config q with Ok Race.Free -> true | _ -> false
      in
      QCheck.assume (free p);
      List.for_all
        (fun (pass : Opt.Pass.t) -> free (Opt.Pass.apply pass p))
        passes)

let test_witness_completeness =
  QCheck.Test.make ~count:15
    ~name:"every enumerated done trace has a witness"
    arbitrary_program (fun p ->
      let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving p in
      QCheck.assume o.Explore.Enum.exact;
      Explore.Traceset.fold
        (fun tr ok ->
          ok
          &&
          match tr.Ps.Event.ending with
          | Ps.Event.Done ->
              Explore.Witness.find ~config ~outs:tr.Ps.Event.outs p <> None
          | _ -> true)
        o.Explore.Enum.traces true)

let test_witness_soundness =
  QCheck.Test.make ~count:15
    ~name:"no witness for outputs outside the behaviour set"
    arbitrary_program (fun p ->
      let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving p in
      QCheck.assume o.Explore.Enum.exact;
      (* an output value no print can produce *)
      Explore.Witness.find ~config ~outs:[ 424242 ] p = None)

let test_passes_idempotent_wf =
  QCheck.Test.make ~count:50 ~name:"pass outputs stay well-formed"
    arbitrary_program (fun p ->
      List.for_all
        (fun (pass : Opt.Pass.t) ->
          match Lang.Wf.check (Opt.Pass.apply pass p) with
          | Ok () -> true
          | Error _ -> false)
        passes)

(* ------------------------------------------------------------------ *)
(* Random programs WITH a bounded loop: exercises LInv/LICM and the
   loop-aware analyses on shapes the straight-line generator cannot
   produce. *)

let loop_program_gen =
  let open QCheck.Gen in
  map2
    (fun body_instrs tail_instrs ->
      let body = body_instrs @ [ Assign ("i", Bin (Add, Reg "i", Val 1)) ] in
      let t1 =
        ( "t1",
          codeheap ~entry:"L0"
            [
              ("L0", block [ Assign ("i", Val 0) ] (Jmp "H"));
              ("H", block [] (Be (Bin (Lt, Reg "i", Val 2), "B", "E")));
              ("B", block body (Jmp "H"));
              ("E", block [ Print (Reg "r0") ] Return);
            ] )
      in
      let t2 =
        ( "t2",
          codeheap ~entry:"L0"
            [ ("L0", block (tail_instrs @ [ Print (Reg "r0") ]) Return) ] )
      in
      program ~atomics:[ "f" ] ~code:[ t1; t2 ] [ "t1"; "t2" ])
    (list_size (int_range 1 3) instr_gen)
    (list_size (int_range 1 3) instr_gen)

let arbitrary_loop_program =
  QCheck.make ~print:Lang.Pp.program_to_string loop_program_gen

let test_loop_passes_refine =
  QCheck.Test.make ~count:15 ~name:"passes refine on random loop programs"
    arbitrary_loop_program (fun p ->
      List.for_all
        (fun (pass : Opt.Pass.t) ->
          let tgt = Opt.Pass.apply pass p in
          equal_program tgt p
          || Explore.Refine.refines ~config ~target:tgt ~source:p ())
        [ Opt.Licm.pass; Opt.Constprop.pass; Opt.Dce.pass ])

let test_loop_thm41 =
  QCheck.Test.make ~count:15 ~name:"Theorem 4.1 on random loop programs"
    arbitrary_loop_program (fun p ->
      Explore.Refine.equivalent_disciplines ~config p)

let () =
  Alcotest.run "soundness"
    [
      ( "random-programs",
        List.map QCheck_alcotest.to_alcotest
          [
            test_thm41;
            test_lemma51;
            test_passes_refine;
            test_pipeline_refines;
            test_passes_preserve_wwrf;
            test_passes_idempotent_wf;
            test_witness_completeness;
            test_witness_soundness;
          ] );
      ( "loop-programs",
        List.map QCheck_alcotest.to_alcotest
          [ test_loop_passes_refine; test_loop_thm41 ] );
    ]
