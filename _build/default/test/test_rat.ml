(* Rational timestamps: unit tests and algebraic properties. *)

let rat = Alcotest.testable Rat.pp Rat.equal

let check_rat = Alcotest.check rat

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_normalization () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  check_rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.check_raises "den 0" Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_arith () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "1/2 / 1/4" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check_rat "neg" (Rat.make (-1) 2) (Rat.neg (Rat.make 1 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Rat.lt (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.(check bool) "le refl" true (Rat.le Rat.one Rat.one);
  Alcotest.(check bool) "gt" true (Rat.gt (Rat.of_int 2) Rat.one);
  Alcotest.(check bool) "ge eq" true (Rat.ge Rat.one Rat.one);
  check_rat "min" Rat.zero (Rat.min Rat.zero Rat.one);
  check_rat "max" Rat.one (Rat.max Rat.zero Rat.one)

let test_midpoint () =
  let a = Rat.make 1 3 and b = Rat.make 1 2 in
  let m = Rat.midpoint a b in
  Alcotest.(check bool) "a < mid" true (Rat.lt a m);
  Alcotest.(check bool) "mid < b" true (Rat.lt m b);
  check_rat "midpoint value" (Rat.make 5 12) m

let test_succ_int () =
  check_rat "succ 0" Rat.one (Rat.succ Rat.zero);
  Alcotest.(check bool) "is_integer 3" true (Rat.is_integer (Rat.of_int 3));
  Alcotest.(check bool) "not integer 1/2" false (Rat.is_integer (Rat.make 1 2))

let test_pp () =
  Alcotest.(check string) "int pp" "5" (Rat.to_string (Rat.of_int 5));
  Alcotest.(check string) "frac pp" "5/12" (Rat.to_string (Rat.make 5 12));
  Alcotest.(check string) "neg pp" "-1/2" (Rat.to_string (Rat.make 1 (-2)))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "to_float" 0.5 (Rat.to_float (Rat.make 1 2))

(* ------------------------------------------------------------------ *)
(* Properties *)

let rat_gen =
  QCheck.make
    ~print:(fun r -> Rat.to_string r)
    (QCheck.Gen.map2
       (fun n d -> Rat.make n d)
       (QCheck.Gen.int_range (-1000) 1000)
       (QCheck.Gen.int_range 1 1000))

let prop name law = QCheck.Test.make ~count:500 ~name law

let props =
  [
    prop "add commutative" (QCheck.pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    prop "add associative"
      (QCheck.triple rat_gen rat_gen rat_gen)
      (fun (a, b, c) ->
        Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    prop "mul distributes"
      (QCheck.triple rat_gen rat_gen rat_gen)
      (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c))
          (Rat.add (Rat.mul a b) (Rat.mul a c)));
    prop "sub then add" (QCheck.pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal a (Rat.add (Rat.sub a b) b));
    prop "compare total order"
      (QCheck.pair rat_gen rat_gen)
      (fun (a, b) ->
        let c = Rat.compare a b in
        (c = 0) = Rat.equal a b
        && (c < 0) = Rat.lt a b
        && (c > 0) = Rat.gt a b);
    prop "midpoint strictly between"
      (QCheck.pair rat_gen rat_gen)
      (fun (a, b) ->
        QCheck.assume (not (Rat.equal a b));
        let lo = Rat.min a b and hi = Rat.max a b in
        let m = Rat.midpoint lo hi in
        Rat.lt lo m && Rat.lt m hi);
    prop "normal form: equal iff compare 0"
      (QCheck.pair rat_gen rat_gen)
      (fun (a, b) -> Rat.equal a b = (Rat.compare a b = 0));
    prop "hash respects equality" rat_gen (fun a ->
        Rat.hash a = Rat.hash (Rat.add a Rat.zero));
  ]

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparison" `Quick test_compare;
          Alcotest.test_case "midpoint" `Quick test_midpoint;
          Alcotest.test_case "succ/is_integer" `Quick test_succ_int;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
