(* The dataflow framework: lattices, Kildall worklist, liveness with
   the Fig. 15 release rule, the constant domain with the acquire kill
   rule, available expressions, dominators and natural loops. *)

open Lang

let parse s = Parse.program_of_string s
let fn p name = Ast.FnameMap.find name p.Ast.code

(* ------------------------------------------------------------------ *)
(* Lattice *)

module FInt = Analysis.Lattice.Flat (struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end)

let test_flat_lattice () =
  Alcotest.(check bool) "bot join x" true
    (FInt.equal (FInt.join FInt.Bot (FInt.Known 3)) (FInt.Known 3));
  Alcotest.(check bool) "same join" true
    (FInt.equal (FInt.join (FInt.Known 3) (FInt.Known 3)) (FInt.Known 3));
  Alcotest.(check bool) "diff join top" true
    (FInt.equal (FInt.join (FInt.Known 3) (FInt.Known 4)) FInt.Top);
  Alcotest.(check bool) "top absorbs" true
    (FInt.equal (FInt.join FInt.Top (FInt.Known 3)) FInt.Top);
  Alcotest.(check (option int)) "get known" (Some 3) (FInt.get (FInt.known 3));
  Alcotest.(check (option int)) "get top" None (FInt.get FInt.Top)

let flat_gen =
  QCheck.make
    ~print:(fun v -> Format.asprintf "%a" FInt.pp v)
    QCheck.Gen.(
      oneof
        [ return FInt.Bot; return FInt.Top;
          map (fun n -> FInt.Known n) (int_range 0 5) ])

let lattice_props =
  [
    QCheck.Test.make ~count:200 ~name:"flat join commutative"
      (QCheck.pair flat_gen flat_gen) (fun (a, b) ->
        FInt.equal (FInt.join a b) (FInt.join b a));
    QCheck.Test.make ~count:200 ~name:"flat join associative"
      (QCheck.triple flat_gen flat_gen flat_gen) (fun (a, b, c) ->
        FInt.equal (FInt.join (FInt.join a b) c) (FInt.join a (FInt.join b c)));
    QCheck.Test.make ~count:200 ~name:"flat join idempotent" flat_gen (fun a ->
        FInt.equal (FInt.join a a) a);
  ]

(* ------------------------------------------------------------------ *)
(* Liveness *)

let fig15_like =
  {|atomics x;
threads t;
proc t entry L {
L:
  y.na := 2;
  x.rel := 1;
  y.na := 4;
  return;
}|}

let fig16_like =
  {|threads t;
proc t entry L {
L:
  y.na := 1;
  y.na := 2;
  return;
}|}

let live_after ch =
  let res = Analysis.Liveness.analyze ch in
  res.Analysis.Liveness.after

let test_liveness_release_kill () =
  let ch = fn (parse fig15_like) "t" in
  match live_after ch "L" with
  | [ after_w1; _after_rel; _after_w2 ] ->
      (* y is live right after the first write: the release write
         revives all locations (Fig. 15's correct annotation) *)
      Alcotest.(check bool) "y live after first write" true
        (Analysis.Liveness.var_live "y" after_w1)
  | l -> Alcotest.failf "expected 3 instruction points, got %d" (List.length l)

let test_liveness_dead_store () =
  let ch = fn (parse fig16_like) "t" in
  match live_after ch "L" with
  | [ after_w1; _ ] ->
      Alcotest.(check bool) "y dead after first write (Fig. 16)" false
        (Analysis.Liveness.var_live "y" after_w1)
  | _ -> Alcotest.fail "bad shape"

let test_liveness_rlx_no_kill () =
  (* relaxed writes and acquire reads do not revive locations *)
  let p =
    parse
      {|atomics x;
threads t;
proc t entry L {
L:
  y.na := 2;
  x.rlx := 1;
  r := x.acq;
  y.na := 4;
  return;
}|}
  in
  let ch = fn p "t" in
  match live_after ch "L" with
  | [ after_w1; _; _; _ ] ->
      Alcotest.(check bool) "y dead across rlx write and acq read" false
        (Analysis.Liveness.var_live "y" after_w1)
  | _ -> Alcotest.fail "bad shape"

let test_liveness_register_chain () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 1;
  b := a + 1;
  print(b);
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Liveness.analyze ~exit_live:Analysis.Liveness.none ch in
  match res.Analysis.Liveness.after "L" with
  | [ after_a; after_b; after_print ] ->
      Alcotest.(check bool) "a live after def (used by b)" true
        (Analysis.Liveness.reg_live "a" after_a);
      Alcotest.(check bool) "b live after def" true
        (Analysis.Liveness.reg_live "b" after_b);
      Alcotest.(check bool) "a dead after b's def" false
        (Analysis.Liveness.reg_live "a" after_b);
      Alcotest.(check bool) "b dead after print" false
        (Analysis.Liveness.reg_live "b" after_print)
  | _ -> Alcotest.fail "bad shape"

let test_liveness_dead_chain () =
  (* a feeds only b; b is dead — the chain must be found dead
     (dead definitions do not generate uses) *)
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 1;
  b := a + 1;
  return;
}|}
  in
  let ch = fn p "t" in
  let res =
    Analysis.Liveness.analyze
      ~exit_live:Analysis.Liveness.none ch
  in
  match res.Analysis.Liveness.after "L" with
  | [ after_a; _ ] ->
      Alcotest.(check bool) "a dead (only feeds dead b)" false
        (Analysis.Liveness.reg_live "a" after_a)
  | _ -> Alcotest.fail "bad shape"

let test_liveness_loop () =
  let p =
    parse
      {|threads t;
proc t entry H {
H:
  be i < 3, B, E;
B:
  i := i + 1;
  s := s + i;
  jmp H;
E:
  print(s);
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Liveness.analyze ~exit_live:Analysis.Liveness.none ch in
  let entry = res.Analysis.Liveness.entry "H" in
  Alcotest.(check bool) "i live at header" true
    (Analysis.Liveness.reg_live "i" entry);
  Alcotest.(check bool) "s live at header" true
    (Analysis.Liveness.reg_live "s" entry)

(* ------------------------------------------------------------------ *)
(* Constant domain *)

let test_const_basic () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := 2;
  b := a + 3;
  x.na := b;
  c := x.na;
  print(c);
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Constdom.analyze ch in
  match res.Analysis.Constdom.before "L" with
  | [ _; st_b; st_store; st_load; st_print ] ->
      Alcotest.(check (option int)) "a known" (Some 2)
        (Analysis.Constdom.reg_value "a" st_b);
      Alcotest.(check (option int)) "b folds" (Some 5)
        (Analysis.Constdom.eval st_store (Ast.Reg "b"));
      Alcotest.(check (option int)) "x tracked after store" (Some 5)
        (Analysis.Constdom.var_value "x" st_load);
      Alcotest.(check (option int)) "load forwards" (Some 5)
        (Analysis.Constdom.reg_value "c" st_print)
  | _ -> Alcotest.fail "bad shape"

let test_const_acquire_kills_vars () =
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  x.na := 5;
  r := f.acq;
  c := x.na;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Constdom.analyze ch in
  match res.Analysis.Constdom.before "L" with
  | [ _; st_acq; st_load ] ->
      Alcotest.(check (option int)) "x known before acq" (Some 5)
        (Analysis.Constdom.var_value "x" st_acq);
      Alcotest.(check (option int)) "acq kills location facts" None
        (Analysis.Constdom.var_value "x" st_load)
  | _ -> Alcotest.fail "bad shape"

let test_const_rlx_keeps_vars () =
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  x.na := 5;
  r := f.rlx;
  f.rel := 1;
  c := x.na;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Constdom.analyze ch in
  match res.Analysis.Constdom.before "L" with
  | [ _; _; _; st_load ] ->
      Alcotest.(check (option int))
        "rlx read and rel write keep location facts" (Some 5)
        (Analysis.Constdom.var_value "x" st_load)
  | _ -> Alcotest.fail "bad shape"

let test_const_join () =
  let p =
    parse
      {|threads t;
proc t entry A {
A:
  be c, B, C;
B:
  a := 1;
  jmp D;
C:
  a := 1;
  b := 2;
  jmp D;
D:
  print(a);
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Constdom.analyze ch in
  let st = res.Analysis.Constdom.entry "D" in
  Alcotest.(check (option int)) "a agrees on both paths" (Some 1)
    (Analysis.Constdom.reg_value "a" st);
  Alcotest.(check (option int)) "b only on one path" None
    (Analysis.Constdom.reg_value "b" st)

let test_const_call_kills () =
  let p =
    parse
      {|threads t;
proc t entry A {
A:
  a := 1;
  x.na := 2;
  call(g, B);
B:
  print(a);
  return;
}
proc g entry G {
G:
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Constdom.analyze ch in
  let st = res.Analysis.Constdom.entry "B" in
  Alcotest.(check (option int)) "registers killed at call" None
    (Analysis.Constdom.reg_value "a" st);
  Alcotest.(check (option int)) "locations killed at call" None
    (Analysis.Constdom.var_value "x" st)

(* ------------------------------------------------------------------ *)
(* Available expressions *)

let test_avail_basic () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := b + c;
  d := b + c;
  e := a + 1;
  b := 0;
  f := b + c;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Availexpr.analyze ch in
  match res.Analysis.Availexpr.before "L" with
  | [ _; st_d; _; st_killb; st_f ] ->
      let rhs = Analysis.Availexpr.Expr (Parse.expr_of_string "b + c") in
      Alcotest.(check (option string)) "b+c available in a" (Some "a")
        (Analysis.Availexpr.lookup rhs st_d);
      Alcotest.(check (option string)) "still available later" (Some "a")
        (Analysis.Availexpr.lookup rhs st_killb);
      Alcotest.(check (option string)) "killed by b := 0" None
        (Analysis.Availexpr.lookup rhs st_f)
  | _ -> Alcotest.fail "bad shape"

let test_avail_load_facts () =
  let p =
    parse
      {|atomics f;
threads t;
proc t entry L {
L:
  a := x.na;
  b := x.na;
  r := f.acq;
  c := x.na;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Availexpr.analyze ch in
  match res.Analysis.Availexpr.before "L" with
  | [ _; st_b; st_acq; st_c ] ->
      let rhs = Analysis.Availexpr.LoadNa "x" in
      Alcotest.(check (option string)) "x.na available in a" (Some "a")
        (Analysis.Availexpr.lookup rhs st_b);
      Alcotest.(check (option string)) "still before acq" (Some "a")
        (Analysis.Availexpr.lookup rhs st_acq);
      Alcotest.(check (option string)) "acq kills load facts" None
        (Analysis.Availexpr.lookup rhs st_c)
  | _ -> Alcotest.fail "bad shape"

let test_avail_store_kills_and_forwards () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := x.na;
  x.na := b;
  c := x.na;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Availexpr.analyze ch in
  match res.Analysis.Availexpr.before "L" with
  | [ _; _; st_c ] ->
      Alcotest.(check (option string)) "store kills old fact, forwards b"
        (Some "b")
        (Analysis.Availexpr.lookup (Analysis.Availexpr.LoadNa "x") st_c)
  | _ -> Alcotest.fail "bad shape"

let test_avail_oldest_holder_survives_loop () =
  (* the LInv contract: a reload in the loop must not steal the
     preheader fact *)
  let p =
    parse
      {|threads t;
proc t entry P {
P:
  h := x.na;
  jmp H;
H:
  r := x.na;
  be r < 3, H, E;
E:
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Availexpr.analyze ch in
  match res.Analysis.Availexpr.before "H" with
  | [ st_r ] ->
      Alcotest.(check (option string)) "h survives the back edge" (Some "h")
        (Analysis.Availexpr.lookup (Analysis.Availexpr.LoadNa "x") st_r)
  | _ -> Alcotest.fail "bad shape"

(* ------------------------------------------------------------------ *)
(* Copy domain *)

let test_copy_basic () =
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := x.na;
  b := a;
  c := b;
  a := 5;
  d := c;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Copydom.analyze ch in
  match res.Analysis.Copydom.before "L" with
  | [ _; _; st_c; st_kill; st_d ] ->
      Alcotest.(check (option string)) "b copies a" (Some "a")
        (Analysis.Copydom.copy_of "b" st_c);
      Alcotest.(check (option string)) "chain flattened: c copies a"
        (Some "a")
        (Analysis.Copydom.copy_of "c" st_kill);
      (* redefining a kills every fact involving a *)
      Alcotest.(check (option string)) "b fact killed" None
        (Analysis.Copydom.copy_of "b" st_d);
      Alcotest.(check (option string)) "c fact killed" None
        (Analysis.Copydom.copy_of "c" st_d)
  | _ -> Alcotest.fail "bad shape"

let test_copy_join () =
  let p =
    parse
      {|threads t;
proc t entry A {
A:
  be cnd, B, C;
B:
  b := a;
  jmp D;
C:
  b := a;
  c := a;
  jmp D;
D:
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Copydom.analyze ch in
  let st = res.Analysis.Copydom.entry "D" in
  Alcotest.(check (option string)) "agreeing copy survives join" (Some "a")
    (Analysis.Copydom.copy_of "b" st);
  Alcotest.(check (option string)) "one-sided copy dropped" None
    (Analysis.Copydom.copy_of "c" st)

let test_copy_self_assign () =
  (* r := r establishes nothing (and must not loop the analysis) *)
  let p =
    parse
      {|threads t;
proc t entry L {
L:
  a := a;
  return;
}|}
  in
  let ch = fn p "t" in
  let res = Analysis.Copydom.analyze ch in
  match res.Analysis.Copydom.before "L" with
  | [ st ] ->
      Alcotest.(check (option string)) "no self fact" None
        (Analysis.Copydom.copy_of "a" st)
  | _ -> Alcotest.fail "bad shape"

(* ------------------------------------------------------------------ *)
(* Dominators and loops *)

let loopy =
  {|threads t;
proc t entry A {
A:
  jmp H;
H:
  be c, B, E;
B:
  r := x.na;
  jmp H;
E:
  return;
}|}

let test_dominators () =
  let ch = fn (parse loopy) "t" in
  let dom = Analysis.Dominator.compute ch in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all
       (fun l -> Analysis.Dominator.dominates dom "A" l)
       [ "A"; "H"; "B"; "E" ]);
  Alcotest.(check bool) "H dominates B" true
    (Analysis.Dominator.dominates dom "H" "B");
  Alcotest.(check bool) "B does not dominate H" false
    (Analysis.Dominator.dominates dom "B" "H");
  Alcotest.(check (option string)) "idom of H" (Some "A")
    (Analysis.Dominator.idom dom "H");
  Alcotest.(check (option string)) "idom of entry" None
    (Analysis.Dominator.idom dom "A")

let test_loops () =
  let ch = fn (parse loopy) "t" in
  match Analysis.Loops.find ch with
  | [ l ] ->
      Alcotest.(check string) "header" "H" l.Analysis.Loops.header;
      Alcotest.(check (slist string compare))
        "body" [ "B"; "H" ]
        (Ast.VarSet.elements l.Analysis.Loops.body);
      Alcotest.(check (list string)) "back edge from B" [ "B" ] l.Analysis.Loops.back_edges;
      Alcotest.(check (list string)) "outside preds" [ "A" ]
        (Analysis.Loops.preheader_preds ch l)
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_nested_loops () =
  let p =
    parse
      {|threads t;
proc t entry A {
A:
  jmp H1;
H1:
  be c1, H2, E;
H2:
  be c2, B, X;
B:
  jmp H2;
X:
  jmp H1;
E:
  return;
}|}
  in
  let ch = fn p "t" in
  let loops = Analysis.Loops.find ch in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let outer = List.find (fun l -> l.Analysis.Loops.header = "H1") loops in
  let inner = List.find (fun l -> l.Analysis.Loops.header = "H2") loops in
  Alcotest.(check bool) "inner body within outer" true
    (Ast.VarSet.subset inner.Analysis.Loops.body outer.Analysis.Loops.body)

let test_no_loops () =
  let ch = fn (parse fig16_like) "t" in
  Alcotest.(check int) "straight-line: no loops" 0
    (List.length (Analysis.Loops.find ch))

(* ------------------------------------------------------------------ *)
(* Worklist convergence on random CFGs: forward constant analysis
   terminates and produces a fixpoint (transfer of entry state is
   consistent with the recorded per-block states). *)

let random_cfg_gen =
  QCheck.Gen.(
    map
      (fun (n, edges) ->
        let n = max 1 n in
        let label i = Printf.sprintf "L%d" i in
        let blocks =
          List.init n (fun i ->
              let succs =
                List.filter_map
                  (fun (a, b) -> if a mod n = i then Some (b mod n) else None)
                  edges
              in
              let term =
                match succs with
                | [] -> Ast.Return
                | [ s ] -> Ast.Jmp (label s)
                | s1 :: s2 :: _ -> Ast.Be (Ast.Reg "c", label s1, label s2)
              in
              (label i, Ast.block [ Ast.Assign ("a", Ast.Val i) ] term))
        in
        Ast.codeheap ~entry:"L0" blocks)
      (pair (int_range 1 8)
         (list_size (int_range 0 12) (pair (int_range 0 7) (int_range 0 7)))))

let cfg_arbitrary =
  QCheck.make ~print:(fun ch ->
      Format.asprintf "%a" (Lang.Pp.pp_codeheap ~name:"t") ch)
    random_cfg_gen

let worklist_props =
  [
    QCheck.Test.make ~count:100 ~name:"const analysis is a fixpoint"
      cfg_arbitrary (fun ch ->
        let res = Analysis.Constdom.analyze ch in
        (* for every edge (l -> s), transfer(entry l) ⊑ entry s *)
        Ast.LabelMap.for_all
          (fun l b ->
            let out =
              List.fold_left
                (fun st i -> Analysis.Constdom.transfer_instr i st)
                (res.Analysis.Constdom.entry l)
                b.Ast.instrs
              |> Analysis.Constdom.transfer_term b.Ast.term
            in
            List.for_all
              (fun s ->
                let target = res.Analysis.Constdom.entry s in
                Analysis.Constdom.L.equal
                  (Analysis.Constdom.L.join out target)
                  target)
              (Cfg.successors b))
          ch.Ast.blocks);
    QCheck.Test.make ~count:100 ~name:"liveness is a fixpoint" cfg_arbitrary
      (fun ch ->
        let res = Analysis.Liveness.analyze ch in
        let u = Analysis.Liveness.universe_of ch in
        Ast.LabelMap.for_all
          (fun l b ->
            (* entry l = transfer of the block over joined successor
               entries (or the exit assumption) *)
            let out =
              match Cfg.successors b with
              | [] -> Analysis.Liveness.all u
              | succs ->
                  List.fold_left
                    (fun acc s ->
                      Analysis.Liveness.L.join acc
                        (res.Analysis.Liveness.entry s))
                    Analysis.Liveness.L.bot succs
            in
            let entry =
              List.fold_right
                (fun i st -> Analysis.Liveness.transfer_instr u i st)
                b.Ast.instrs
                (Analysis.Liveness.transfer_term u b.Ast.term out)
            in
            Analysis.Liveness.L.equal entry (res.Analysis.Liveness.entry l))
          ch.Ast.blocks);
  ]

let () =
  Alcotest.run "analysis"
    [
      ( "lattice",
        Alcotest.test_case "flat" `Quick test_flat_lattice
        :: List.map QCheck_alcotest.to_alcotest lattice_props );
      ( "liveness",
        [
          Alcotest.test_case "release revives (Fig. 15)" `Quick
            test_liveness_release_kill;
          Alcotest.test_case "dead store (Fig. 16)" `Quick
            test_liveness_dead_store;
          Alcotest.test_case "rlx/acq do not revive" `Quick
            test_liveness_rlx_no_kill;
          Alcotest.test_case "register chains" `Quick
            test_liveness_register_chain;
          Alcotest.test_case "dead chains" `Quick test_liveness_dead_chain;
          Alcotest.test_case "loop" `Quick test_liveness_loop;
        ] );
      ( "constdom",
        [
          Alcotest.test_case "basics + store/load" `Quick test_const_basic;
          Alcotest.test_case "acquire kills locations" `Quick
            test_const_acquire_kills_vars;
          Alcotest.test_case "relaxed keeps locations" `Quick
            test_const_rlx_keeps_vars;
          Alcotest.test_case "join" `Quick test_const_join;
          Alcotest.test_case "call kills" `Quick test_const_call_kills;
        ] );
      ( "availexpr",
        [
          Alcotest.test_case "expressions" `Quick test_avail_basic;
          Alcotest.test_case "load facts + acquire" `Quick test_avail_load_facts;
          Alcotest.test_case "store kills and forwards" `Quick
            test_avail_store_kills_and_forwards;
          Alcotest.test_case "oldest holder survives loops" `Quick
            test_avail_oldest_holder_survives_loop;
        ] );
      ( "copydom",
        [
          Alcotest.test_case "chains and kills" `Quick test_copy_basic;
          Alcotest.test_case "join" `Quick test_copy_join;
          Alcotest.test_case "self assignment" `Quick test_copy_self_assign;
        ] );
      ( "cfg-structures",
        [
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "natural loop" `Quick test_loops;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "no loops" `Quick test_no_loops;
        ] );
      ("worklist", List.map QCheck_alcotest.to_alcotest worklist_props);
    ]
