(* Promise certification against the capped memory (Sec. 3). *)

open Lang.Modes

let code_of instrs =
  Lang.Ast.code_of_list
    [ ("f", Lang.Ast.codeheap ~entry:"L" [ ("L", Lang.Ast.block instrs Lang.Ast.Return) ]) ]

let state instrs vars =
  let code = code_of instrs in
  let ts = Option.get (Ps.Thread.init code "f") in
  (code, ts, Ps.Memory.init vars)

let promise _code ts mem x v =
  List.hd
    (Ps.Thread.promise_steps ~candidates:[ (x, v) ]
       ~atomics:Lang.Ast.VarSet.empty ts mem)

let test_no_promise_trivially_consistent () =
  let code, ts, mem = state [ Lang.Ast.Skip ] [ "x" ] in
  Alcotest.(check bool) "consistent" true (Ps.Cert.consistent ~code ts mem)

let test_fulfillable_promise_consistent () =
  let code, ts, mem = state [ Lang.Ast.Store ("x", Lang.Ast.Val 5, WNa) ] [ "x" ] in
  let p = promise code ts mem "x" 5 in
  Alcotest.(check bool) "certifiable" true
    (Ps.Cert.consistent ~code p.Ps.Thread.ts p.Ps.Thread.mem)

let test_unfulfillable_promise_inconsistent () =
  let code, ts, mem = state [ Lang.Ast.Skip ] [ "x" ] in
  let p = promise code ts mem "x" 5 in
  Alcotest.(check bool) "no write in code: inconsistent" false
    (Ps.Cert.consistent ~code p.Ps.Thread.ts p.Ps.Thread.mem)

let test_wrong_value_inconsistent () =
  let code, ts, mem = state [ Lang.Ast.Store ("x", Lang.Ast.Val 5, WNa) ] [ "x" ] in
  let p = promise code ts mem "x" 6 in
  Alcotest.(check bool) "value mismatch: inconsistent" false
    (Ps.Cert.consistent ~code p.Ps.Thread.ts p.Ps.Thread.mem)

let test_conditional_promise () =
  (* The thread writes x := 1 only if it reads y = 0; from the capped
     memory (y still 0) the branch is taken, so the promise
     certifies — this is the Fig. 4 mechanism. *)
  let code =
    Lang.Ast.code_of_list
      [
        ( "f",
          Lang.Ast.codeheap ~entry:"A"
            [
              ("A", Lang.Ast.block [ Lang.Ast.Load ("r", "y", Rlx) ]
                      (Lang.Ast.Be (Lang.Ast.Reg "r", "B", "C")));
              ("B", Lang.Ast.block [] Lang.Ast.Return);
              ("C", Lang.Ast.block [ Lang.Ast.Store ("x", Lang.Ast.Val 1, WRlx) ]
                      Lang.Ast.Return);
            ] );
      ]
  in
  let ts = Option.get (Ps.Thread.init code "f") in
  let mem = Ps.Memory.init [ "x"; "y" ] in
  let p = promise code ts mem "x" 1 in
  Alcotest.(check bool) "certifiable via the y=0 branch" true
    (Ps.Cert.consistent ~code p.Ps.Thread.ts p.Ps.Thread.mem);
  (* after the thread reads y = 1, the promise can no longer certify *)
  let mem1 =
    Ps.Memory.add_exn
      (Ps.Message.msg ~var:"y" ~value:1 ~from_:(Rat.of_int 1) ~to_:(Rat.of_int 2)
         ~view:Ps.View.bot)
      p.Ps.Thread.mem
  in
  let read1 =
    List.find
      (fun (s : Ps.Thread.step) -> s.Ps.Thread.event = Ps.Event.Rd (Rlx, "y", 1))
      (Ps.Thread.steps ~code p.Ps.Thread.ts mem1)
  in
  Alcotest.(check bool) "after reading y=1: inconsistent" false
    (Ps.Cert.consistent ~code read1.Ps.Thread.ts read1.Ps.Thread.mem)

let test_capped_blocks_cas_promise () =
  (* A thread that can only fulfill its promise by first succeeding a
     CAS on x must not be able to certify: the capped memory reserves
     the timestamps adjacent to existing messages, modelling that
     another thread may win the CAS first (Sec. 2.1). *)
  let code =
    Lang.Ast.code_of_list
      [
        ( "f",
          Lang.Ast.codeheap ~entry:"A"
            [
              ( "A",
                Lang.Ast.block
                  [
                    Lang.Ast.Cas ("r", "x", Lang.Ast.Val 0, Lang.Ast.Val 1, Rlx, WRlx);
                  ]
                  (Lang.Ast.Be (Lang.Ast.Reg "r", "B", "C")) );
              ("B", Lang.Ast.block [ Lang.Ast.Store ("y", Lang.Ast.Val 1, WRlx) ]
                      Lang.Ast.Return);
              ("C", Lang.Ast.block [] Lang.Ast.Return);
            ] );
      ]
  in
  let ts = Option.get (Ps.Thread.init code "f") in
  let mem = Ps.Memory.init [ "x"; "y" ] in
  let ps =
    Ps.Thread.promise_steps ~candidates:[ ("y", 1) ]
      ~atomics:(Lang.Ast.VarSet.singleton "x") ts mem
  in
  List.iter
    (fun (p : Ps.Thread.step) ->
      Alcotest.(check bool) "CAS-dependent promise cannot certify at capped memory"
        false
        (Ps.Cert.consistent ~code p.Ps.Thread.ts p.Ps.Thread.mem))
    ps;
  (* the ablation: without capping, the same promise certifies — the
     capped memory is exactly what rules it out *)
  List.iter
    (fun (p : Ps.Thread.step) ->
      Alcotest.(check bool) "uncapped certification would accept" true
        (Ps.Cert.consistent ~cap:false ~code p.Ps.Thread.ts p.Ps.Thread.mem))
    ps

let test_reservation_enables_cas_promise () =
  (* The reason reservations exist (Sec. 3): a thread that has
     reserved the timestamp interval adjacent to the current write of
     x owns the slot its CAS needs, so a promise depending on that CAS
     certifies even at the capped memory — the thread cancels its own
     reservation during certification and performs the update into the
     freed interval. *)
  let code =
    Lang.Ast.code_of_list
      [
        ( "f",
          Lang.Ast.codeheap ~entry:"A"
            [
              ( "A",
                Lang.Ast.block
                  [
                    Lang.Ast.Cas ("r", "x", Lang.Ast.Val 0, Lang.Ast.Val 1, Rlx, WRlx);
                  ]
                  (Lang.Ast.Be (Lang.Ast.Reg "r", "B", "C")) );
              ("B", Lang.Ast.block [ Lang.Ast.Store ("y", Lang.Ast.Val 1, WRlx) ]
                      Lang.Ast.Return);
              ("C", Lang.Ast.block [] Lang.Ast.Return);
            ] );
      ]
  in
  let ts = Option.get (Ps.Thread.init code "f") in
  let mem = Ps.Memory.init [ "x"; "y" ] in
  (* reserve the interval right after x's initialization message *)
  let rsv =
    List.find
      (fun (s : Ps.Thread.step) ->
        match s.Ps.Thread.ts.Ps.Thread.prm with
        | [ m ] ->
            Ps.Message.var m = "x"
            && Rat.equal (Ps.Message.from_ m) Rat.zero
        | _ -> false)
      (Ps.Thread.reserve_steps ts mem)
  in
  let p =
    List.hd
      (Ps.Thread.promise_steps ~candidates:[ ("y", 1) ]
         ~atomics:(Lang.Ast.VarSet.singleton "x") rsv.Ps.Thread.ts
         rsv.Ps.Thread.mem)
  in
  Alcotest.(check bool)
    "with the reservation, the CAS-dependent promise certifies" true
    (Ps.Cert.consistent ~code p.Ps.Thread.ts p.Ps.Thread.mem)

let test_certifiable_writes () =
  let code, ts, mem =
    state
      [ Lang.Ast.Store ("x", Lang.Ast.Val 5, WNa);
        Lang.Ast.Store ("y", Lang.Ast.Val 6, WRlx) ]
      [ "x"; "y" ]
  in
  let ws = Ps.Cert.certifiable_writes ~code ts mem in
  Alcotest.(check (slist (pair string int) compare))
    "both upcoming writes are candidates"
    [ ("x", 5); ("y", 6) ]
    ws

let test_certifiable_writes_value_dependent () =
  (* x := r where r was read from y: from the capped memory y can
     only give 0, so the only candidate is (x, 0) — the LB-dependency
     (oota) restriction. *)
  let code, ts, mem =
    state
      [ Lang.Ast.Load ("r", "y", Rlx); Lang.Ast.Store ("x", Lang.Ast.Reg "r", WRlx) ]
      [ "x"; "y" ]
  in
  Alcotest.(check (list (pair string int)))
    "only (x,0)"
    [ ("x", 0) ]
    (Ps.Cert.certifiable_writes ~code ts mem)

let test_fuel_bound () =
  (* An unfulfillable promise with a spinning thread terminates the
     search via the fuel bound. *)
  let code =
    Lang.Ast.code_of_list
      [ ("f", Lang.Ast.codeheap ~entry:"A"
                [ ("A", Lang.Ast.block [ Lang.Ast.Skip ] (Lang.Ast.Jmp "A")) ]) ]
  in
  let ts = Option.get (Ps.Thread.init code "f") in
  let mem = Ps.Memory.init [ "x" ] in
  let p =
    List.hd
      (Ps.Thread.promise_steps ~candidates:[ ("x", 1) ]
         ~atomics:Lang.Ast.VarSet.empty ts mem)
  in
  Alcotest.(check bool) "spin loop cannot fulfill" false
    (Ps.Cert.consistent ~fuel:64 ~code p.Ps.Thread.ts p.Ps.Thread.mem)

let () =
  Alcotest.run "cert"
    [
      ( "consistency",
        [
          Alcotest.test_case "trivial" `Quick test_no_promise_trivially_consistent;
          Alcotest.test_case "fulfillable" `Quick
            test_fulfillable_promise_consistent;
          Alcotest.test_case "unfulfillable" `Quick
            test_unfulfillable_promise_inconsistent;
          Alcotest.test_case "wrong value" `Quick test_wrong_value_inconsistent;
          Alcotest.test_case "conditional (Fig. 4)" `Quick test_conditional_promise;
          Alcotest.test_case "capped blocks CAS promises" `Quick
            test_capped_blocks_cas_promise;
          Alcotest.test_case "reservation enables CAS promise" `Quick
            test_reservation_enables_cas_promise;
          Alcotest.test_case "fuel bound" `Quick test_fuel_bound;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "certifiable writes" `Quick test_certifiable_writes;
          Alcotest.test_case "value-dependent" `Quick
            test_certifiable_writes_value_dependent;
        ] );
    ]
