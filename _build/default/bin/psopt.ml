(* psopt — the command-line front end of the promising-semantics
   optimization-verification library.

   Subcommands mirror the library's layers: parse/print, run, explore
   (behaviour sets under either machine), optimize, refine (trace-set
   inclusion), races (ww-RF / rw report), sim (the thread-local
   simulation game) and litmus (the paper's corpus). *)

open Cmdliner

let read_program path =
  try Ok (Lang.Wf.check_exn (Lang.Parse.program_of_file path)) with
  | Lang.Parse.Error e -> Error (`Msg (path ^ ": " ^ e))
  | Invalid_argument e -> Error (`Msg e)
  | Sys_error e -> Error (`Msg e)

let program_arg idx name =
  let doc = "CSimpRTL program file." in
  Arg.(required & pos idx (some file) None & info [] ~docv:name ~doc)

let discipline_term =
  let doc = "Explore with the non-preemptive machine (Fig. 10)." in
  Term.(
    const (fun np ->
        if np then Explore.Enum.Non_preemptive else Explore.Enum.Interleaving)
    $ Arg.(value & flag & info [ "np"; "non-preemptive" ] ~doc))

let config_term =
  let promises =
    let doc = "Promise steps allowed per thread (0 disables promising)." in
    Arg.(value & opt int 1 & info [ "promises" ] ~doc)
  in
  let steps =
    let doc = "Exploration depth budget." in
    Arg.(value & opt int 400 & info [ "max-steps" ] ~doc)
  in
  let no_cap =
    let doc = "Certify promises against the plain (uncapped) memory." in
    Arg.(value & flag & info [ "no-cap" ] ~doc)
  in
  Term.(
    const (fun promises max_steps no_cap ->
        Explore.Config.with_promises promises
          {
            Explore.Config.default with
            max_steps;
            cap_certification = not no_cap;
          })
    $ promises $ steps $ no_cap)

(* ------------------------------------------------------------------ *)

let parse_cmd =
  let sexp_flag =
    Arg.(
      value & flag
      & info [ "sexp" ]
          ~doc:"Emit the machine-readable s-expression form instead.")
  in
  let run file sexp =
    Result.map
      (fun p ->
        if sexp then print_endline (Lang.Sexp.program_to_string p)
        else print_string (Lang.Pp.program_to_string p))
      (read_program file)
  in
  let term = Term.(term_result (const run $ program_arg 0 "FILE" $ sexp_flag)) in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Parse, check well-formedness and print (human syntax, or \
          s-expressions with --sexp).")
    term

let run_cmd =
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Scheduler seed.")
  in
  let run file seed =
    Result.map
      (fun p ->
        let r = Explore.Random_run.run_exn ~seed p in
        Format.printf "trace: %a (%d steps)@." Ps.Event.pp_trace
          r.Explore.Random_run.trace r.Explore.Random_run.steps)
      (read_program file)
  in
  let term = Term.(term_result (const run $ program_arg 0 "FILE" $ seed)) in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Execute once with a pseudo-random scheduler (promise-free).")
    term

let sample_cmd =
  let runs =
    Arg.(value & opt int 1000 & info [ "runs" ] ~doc:"Number of executions.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed.") in
  let run file runs seed =
    Result.map
      (fun p ->
        let freqs = Explore.Random_run.sample ~seed ~runs p in
        let total = List.fold_left (fun a (_, n) -> a + n) 0 freqs in
        Format.printf "%d completed runs, %d distinct outcomes@." total
          (List.length freqs);
        List.iter
          (fun (outs, n) ->
            Format.printf "%8d  [%s]@." n
              (String.concat ";" (List.map string_of_int outs)))
          freqs;
        Format.printf
          "(sampling under-approximates: promise-dependent outcomes never \
           appear; compare with `explore`)@.")
      (read_program file)
  in
  let term = Term.(term_result (const run $ program_arg 0 "FILE" $ runs $ seed)) in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "litmus7-style outcome histogram from random-scheduler runs \
          (promise-free; contrast with the exhaustive `explore`).")
    term

let explore_cmd =
  let run file disc cfg =
    Result.map
      (fun p ->
        let o = Explore.Enum.behaviors_exn ~config:cfg disc p in
        Format.printf "discipline: %a@.config: %a@." Explore.Enum.pp_discipline
          disc Explore.Config.pp cfg;
        Format.printf "behaviours (%s):@.%a@."
          (if o.Explore.Enum.exact then "exact" else "cut by budget")
          Explore.Traceset.pp o.Explore.Enum.traces;
        Format.printf "stats: %a@." Explore.Stats.pp o.Explore.Enum.stats)
      (read_program file)
  in
  let term =
    Term.(
      term_result
        (const run $ program_arg 0 "FILE" $ discipline_term $ config_term))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate the full behaviour set (bounded-exhaustive, promises \
          included).")
    term

let passes_assoc =
  [
    ("constprop", Opt.Constprop.pass);
    ("dce", Opt.Dce.pass);
    ("cse", Opt.Cse.pass);
    ("copyprop", Opt.Copyprop.pass);
    ("linv", Opt.Linv.pass);
    ("licm", Opt.Licm.pass);
    ("cleanup", Opt.Cleanup.pass);
  ]

let opt_cmd =
  let passes =
    let doc =
      "Comma-separated passes: constprop, dce, cse, copyprop, linv, licm, cleanup."
    in
    Arg.(value & opt string "constprop,cse,dce,cleanup" & info [ "passes" ] ~doc)
  in
  let run file passes =
    Result.bind (read_program file) (fun p ->
        let names = String.split_on_char ',' passes in
        let rec build = function
          | [] -> Ok []
          | n :: rest -> (
              match List.assoc_opt (String.trim n) passes_assoc with
              | Some pass -> Result.map (fun l -> pass :: l) (build rest)
              | None -> Error (`Msg ("unknown pass: " ^ n)))
        in
        Result.map
          (fun ps ->
            let out =
              List.fold_left (fun p pass -> Opt.Pass.apply pass p) p ps
            in
            print_string (Lang.Pp.program_to_string out))
          (build names))
  in
  let term = Term.(term_result (const run $ program_arg 0 "FILE" $ passes)) in
  Cmd.v (Cmd.info "opt" ~doc:"Apply optimization passes and print the result.")
    term

let refine_cmd =
  let target =
    Arg.(
      required
      & opt (some file) None
      & info [ "target" ] ~doc:"Optimized program.")
  in
  let source =
    Arg.(
      required
      & opt (some file) None
      & info [ "source" ] ~doc:"Original program.")
  in
  let run tfile sfile disc cfg =
    Result.bind (read_program tfile) (fun t ->
        Result.map
          (fun s ->
            let rep =
              Explore.Refine.check ~config:cfg ~discipline:disc ~target:t
                ~source:s ()
            in
            Format.printf "%a@." Explore.Refine.pp_verdict rep.Explore.Refine.verdict;
            if rep.Explore.Refine.verdict <> Explore.Refine.Refines then exit 1)
          (read_program sfile))
  in
  let term =
    Term.(
      term_result (const run $ target $ source $ discipline_term $ config_term))
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Check event-trace refinement: target ⊆ source (Sec. 2.2).")
    term

let races_cmd =
  let run file cfg =
    Result.map
      (fun p ->
        (match Race.ww_rf ~config:cfg p with
        | Ok v -> Format.printf "ww-RF:   %a@." Race.pp_verdict v
        | Error e -> Format.printf "ww-RF:   error: %s@." e);
        (match Race.ww_nprf ~config:cfg p with
        | Ok v -> Format.printf "ww-NPRF: %a@." Race.pp_verdict v
        | Error e -> Format.printf "ww-NPRF: error: %s@." e);
        match Race.rw_races ~config:cfg p with
        | Ok [] -> Format.printf "rw:      none@."
        | Ok rs ->
            List.iter (fun r -> Format.printf "rw:      %a@." Race.pp_race r) rs
        | Error e -> Format.printf "rw:      error: %s@." e)
      (read_program file)
  in
  let term = Term.(term_result (const run $ program_arg 0 "FILE" $ config_term)) in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "Check write-write race freedom (Fig. 11) under both machines and \
          report read-write races.")
    term

let sim_cmd =
  let target =
    Arg.(
      required & opt (some file) None & info [ "target" ] ~doc:"Optimized program.")
  in
  let source =
    Arg.(
      required & opt (some file) None & info [ "source" ] ~doc:"Original program.")
  in
  let inv =
    let doc = "Invariant instance: iid or idce." in
    Arg.(value & opt (enum [ ("iid", `Iid); ("idce", `Idce) ]) `Iid & info [ "inv" ] ~doc)
  in
  let run tfile sfile inv =
    Result.bind (read_program tfile) (fun t ->
        Result.map
          (fun s ->
            let inv =
              match inv with
              | `Iid -> Sim.Invariant.iid
              | `Idce -> Sim.Invariant.idce
            in
            let rs = Sim.Simcheck.check_program ~inv ~target:t ~source:s () in
            let ok = ref true in
            List.iter
              (fun (f, v) ->
                if v <> Sim.Simcheck.Holds then ok := false;
                Format.printf "%s: %a@." f Sim.Simcheck.pp_verdict v)
              rs;
            if not !ok then exit 1)
          (read_program sfile))
  in
  let term = Term.(term_result (const run $ target $ source $ inv)) in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Check the thread-local simulation (Sec. 6) between target and \
          source, per thread function.")
    term

let verify_cmd =
  let pass_arg =
    let doc = "Optimizer to verify (constprop, dce, cse, copyprop, linv, licm, cleanup)." in
    Arg.(value & opt string "dce" & info [ "pass" ] ~doc)
  in
  let run file pass =
    Result.bind (read_program file) (fun p ->
        match Sim.Verif.find pass with
        | None -> Error (`Msg ("unknown optimizer: " ^ pass))
        | Some r ->
            let v = Sim.Verif.check r p in
            Format.printf "%s on %s: %a@." pass file Sim.Verif.pp_verdict v;
            if v <> Sim.Verif.Verified then exit 1 else Ok ())
  in
  let term = Term.(term_result (const run $ program_arg 0 "FILE" $ pass_arg)) in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Run the full Fig. 6 pipeline for one optimizer on one program: \
          ww-RF of the source, the thread-local simulation with the pass's \
          invariant, whole-program refinement, ww-RF preservation.")
    term

let witness_cmd =
  let outs =
    let doc = "Comma-separated expected outputs, e.g. --outs 1,1." in
    Arg.(value & opt string "" & info [ "outs" ] ~doc)
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Show silent steps too.")
  in
  let run file outs full disc cfg =
    Result.bind (read_program file) (fun p ->
        let parse_outs s =
          if String.trim s = "" then Ok []
          else
            try
              Ok
                (List.map
                   (fun x -> int_of_string (String.trim x))
                   (String.split_on_char ',' s))
            with Failure _ -> Error (`Msg ("invalid --outs: " ^ s))
        in
        Result.map
          (fun outs ->
            match
              Explore.Witness.find ~config:cfg ~discipline:disc ~outs p
            with
            | Some w ->
                Format.printf "witness:@.%a@."
                  (if full then Explore.Witness.pp_full else Explore.Witness.pp)
                  w
            | None ->
                Format.printf
                  "no witness within bounds (outcome unobservable if the \
                   exploration is exact)@.";
                exit 1)
          (parse_outs outs))
  in
  let term =
    Term.(
      term_result
        (const run $ program_arg 0 "FILE" $ outs $ full $ discipline_term
       $ config_term))
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:
         "Find an annotated execution (schedule) producing the given \
          outputs, in the style of the paper's Sec. 2.1 executions.")
    term

let litmus_cmd =
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Litmus name.")
  in
  let run name =
    let sorted l = List.sort compare l in
    let check (t : Litmus.t) =
      let o = Explore.Enum.behaviors_exn Explore.Enum.Interleaving t.Litmus.prog in
      let outs =
        Explore.Traceset.done_outs o.Explore.Enum.traces
        |> List.map sorted |> List.sort_uniq compare
      in
      let ok_exp =
        List.for_all (fun e -> List.mem (sorted e) outs) t.Litmus.expected
      in
      let ok_forb =
        List.for_all (fun f -> not (List.mem (sorted f) outs)) t.Litmus.forbidden
      in
      Format.printf "%-18s %s — %s@." t.Litmus.name
        (if ok_exp && ok_forb then "ok" else "MISMATCH")
        t.Litmus.descr;
      List.iter
        (fun o ->
          Format.printf "    [%s]@."
            (String.concat ";" (List.map string_of_int o)))
        outs
    in
    match name with
    | None -> Ok (List.iter check Litmus.all)
    | Some n -> (
        match List.find_opt (fun t -> t.Litmus.name = n) Litmus.all with
        | Some t -> Ok (check t)
        | None -> Error (`Msg ("unknown litmus test: " ^ n)))
  in
  let term = Term.(term_result (const run $ name_arg)) in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run the paper's litmus corpus against the explorer.")
    term

let () =
  let info =
    Cmd.info "psopt" ~version:"1.0.0"
      ~doc:
        "Verifying optimizations of concurrent programs in the promising \
         semantics (PLDI 2022) — executable reproduction."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            parse_cmd;
            run_cmd;
            sample_cmd;
            explore_cmd;
            opt_cmd;
            refine_cmd;
            races_cmd;
            sim_cmd;
            verify_cmd;
            witness_cmd;
            litmus_cmd;
          ]))
