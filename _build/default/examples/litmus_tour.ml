(* A tour of the paper's examples: every litmus program of the corpus
   is explored exhaustively and its observed outcomes are checked
   against the paper's claims (expected outcomes observable, forbidden
   outcomes absent).

     dune exec examples/litmus_tour.exe *)

let sorted l = List.sort compare l

let () =
  let failures = ref 0 in
  List.iter
    (fun (t : Litmus.t) ->
      let o = Explore.Enum.behaviors_exn Explore.Enum.Interleaving t.prog in
      let outs =
        Explore.Traceset.done_outs o.Explore.Enum.traces
        |> List.map sorted |> List.sort_uniq compare
      in
      let missing =
        List.filter (fun e -> not (List.mem (sorted e) outs)) t.expected
      in
      let present =
        List.filter (fun f -> List.mem (sorted f) outs) t.forbidden
      in
      let ok = missing = [] && present = [] in
      if not ok then incr failures;
      Format.printf "%-18s %-4s %s@." t.name
        (if ok then "ok" else "FAIL")
        t.descr;
      Format.printf "  outcomes: %s%s@."
        (String.concat " "
           (List.map
              (fun l ->
                "[" ^ String.concat ";" (List.map string_of_int l) ^ "]")
              outs))
        (if t.needs_promises then "   (needs promises)" else ""))
    Litmus.all;
  Format.printf "@.%d programs, %d mismatches@." (List.length Litmus.all)
    !failures;
  exit (if !failures = 0 then 0 else 1)
