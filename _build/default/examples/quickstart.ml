(* Quickstart: build the store-buffering litmus program with the
   embedded DSL, run it once, and enumerate all of its PS2.1
   behaviours — reproducing the annotated weak outcome of Sec. 2.1.

     dune exec examples/quickstart.exe *)

open Lang.Modes

let sb =
  Lang.Build.(
    program ~atomics:[ "x"; "y" ]
      [
        proc "t1"
          [
            blk "L0"
              [
                store "x" ~mode:WRlx (i 1);
                load "r1" "y" ~mode:Rlx;
                print (r "r1");
              ]
              ret;
          ];
        proc "t2"
          [
            blk "L0"
              [
                store "y" ~mode:WRlx (i 1);
                load "r2" "x" ~mode:Rlx;
                print (r "r2");
              ]
              ret;
          ];
      ]
      ~threads:[ "t1"; "t2" ])

let () =
  Format.printf "== the program ==@.%s@." (Lang.Pp.program_to_string sb);

  (* One concrete execution under a random scheduler. *)
  let run = Explore.Random_run.run_exn ~seed:42 sb in
  Format.printf "one random run: %a@.@." Ps.Event.pp_trace
    run.Explore.Random_run.trace;

  (* The full behaviour set, promises included. *)
  let o = Explore.Enum.behaviors_exn Explore.Enum.Interleaving sb in
  Format.printf "all behaviours:@.%a@.@." Explore.Traceset.pp
    o.Explore.Enum.traces;

  (* The weak outcome the paper annotates: both loads read 0. *)
  let weak = Explore.Traceset.has_done [ 0; 0 ] o.Explore.Enum.traces in
  Format.printf "store-buffering weak outcome r1 = r2 = 0 observable: %b@."
    weak;
  assert weak;

  (* Theorem 4.1 in action: the non-preemptive machine computes the
     same behaviour set. *)
  let np = Explore.Enum.behaviors_exn Explore.Enum.Non_preemptive sb in
  Format.printf "non-preemptive machine agrees: %b@."
    (Explore.Traceset.equal_behaviour o.Explore.Enum.traces
       np.Explore.Enum.traces)
