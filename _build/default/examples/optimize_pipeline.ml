(* The full optimizer pipeline on a realistic worker loop: constant
   propagation, CSE, LICM and DCE composed vertically, with every
   stage's output checked against the source by exhaustive refinement
   (the executable rendition of Theorem 6.6) and write-write race
   freedom checked to be preserved (Lemma 6.2's second conclusion).

     dune exec examples/optimize_pipeline.exe *)

let src_text =
  {|
// A worker repeatedly reads a configuration value (loop invariant),
// scales it by a constant, and publishes progress through a relaxed
// counter; a supervisor thread sets the configuration first.
atomics flag done_;
threads worker supervisor;

proc worker entry L0 {
L0:
  r1 := 0;            // induction variable
  r2 := 0;            // accumulator
  r3 := 4;            // constant: propagated into the loop
  jmp L1;
L1:
  be r1 < 3, L2, L5;
L2:
  r4 := flag.rlx;     // relaxed flag: LICM may cross it
  be r4 == 0, L2, L3;
L3:
  r5 := conf.na;      // loop invariant load, hoisted by LICM
  r6 := r5 * r3;      // r3 is the constant 4
  r2 := r2 + r6;
  scratch.na := r2;   // dead unless read later: DCE candidate
  r1 := r1 + 1;
  jmp L1;
L5:
  out.na := r2;
  r7 := out.na;       // CSE: forwarded from the store
  print(r7);
  done_.rel := 1;
  return;
}

proc supervisor entry S0 {
S0:
  conf.na := 5;
  flag.rlx := 1;
  r1 := done_.acq;
  be r1 == 1, S1, S2;
S1:
  print(100);
  return;
S2:
  print(200);
  return;
}
|}

let pipeline =
  Opt.Pass.(
    compose Opt.Constprop.pass_fix
      (compose Opt.Licm.pass
         (compose Opt.Cse.pass_fix
            (compose Opt.Copyprop.pass_fix
               (compose Opt.Dce.pass_fix Opt.Cleanup.pass)))))

let () =
  let src = Lang.Wf.check_exn (Lang.Parse.program_of_string src_text) in
  Format.printf "== source ==@.%s@." (Lang.Pp.program_to_string src);
  let tgt = Opt.Pass.apply pipeline src in
  Format.printf "== after %s ==@.%s@." pipeline.Opt.Pass.name
    (Lang.Pp.program_to_string tgt);

  (* Refinement: the optimized program has no new behaviours. *)
  let rep = Explore.Refine.check ~target:tgt ~source:src () in
  Format.printf "refinement (tgt ⊆ src): %a@." Explore.Refine.pp_verdict
    rep.Explore.Refine.verdict;
  assert (rep.Explore.Refine.verdict = Explore.Refine.Refines);

  (* ww-RF preservation (Lemma 6.2): the source is ww-race-free, so
     the target must be too. *)
  let free p = match Race.ww_rf p with Ok Race.Free -> true | _ -> false in
  let src_free = free src and tgt_free = free tgt in
  Format.printf "ww-RF: source %b, target %b@." src_free tgt_free;
  assert (src_free && tgt_free);
  Format.printf "pipeline verified on this program.@."
