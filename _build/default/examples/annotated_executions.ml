(* Reconstructing the paper's annotated executions (Sec. 2.1).

   The paper explains the promising semantics through annotated
   executions, e.g. for load buffering:

     [t1: promise (y_rlx := 1); t2: r2 := y_rlx //1; t2: x_rlx := r2;
      t1: r1 := x_rlx //1; t1: y_rlx := 1 (fulfill)]

   The witness search recovers such schedules mechanically: ask for an
   output sequence and get back the thread steps of one execution
   producing it, or a bounded-exhaustive proof that none exists.

     dune exec examples/annotated_executions.exe *)

let show name prog outs =
  Format.printf "%-14s outputs %s: " name
    ("[" ^ String.concat ";" (List.map string_of_int outs) ^ "]");
  match Explore.Witness.find ~outs prog with
  | Some w -> Format.printf "@.  %a@.@." Explore.Witness.pp w
  | None -> Format.printf "unobservable (no witness)@.@."

let () =
  let lit n = (Litmus.find n).Litmus.prog in

  (* SB's weak outcome: both threads read 0. *)
  show "SB" (lit "sb") [ 0; 0 ];

  (* LB's weak outcome: the witness must contain the promise step the
     paper's annotation shows. *)
  show "LB" (lit "lb") [ 1; 1 ];

  (* The out-of-thin-air outcome has no witness — certification at the
     capped memory rules the promise out. *)
  show "LB-dep (oota)" (lit "lb_oota") [ 1; 1 ];

  (* Fig. 1: the violating behaviour of the naively-hoisted target
     (prints 0), which the source cannot produce. *)
  show "fig1 target" (lit "fig1_foo_opt") [ 0 ];
  show "fig1 source" (lit "fig1_foo") [ 0 ];

  (* Message passing: the stale payload is witnessed under the relaxed
     flag and refuted under release/acquire. *)
  show "MP (rlx)" (lit "mp_rlx") [ 0 ];
  show "MP (rel/acq)" (lit "mp_rel_acq") [ 0 ]
