(* Write-write race freedom (Sec. 5) in practice.

   - ww_racy: two unsynchronized non-atomic writes — the detector
     pinpoints the racing thread and the unobserved message;
   - ww_sync: the same writes ordered by release/acquire — race free;
   - fig4: the subtle program whose apparent race is never reachable,
     because races are only checked where promises certify;
   - fig5: LInv introduces a read-write race (reported, not fatal)
     while the source has none — and the transformation is sound.

     dune exec examples/race_check.exe *)

let report name prog =
  (match Race.ww_rf prog with
  | Ok v -> Format.printf "%-10s ww-RF:  %a@." name Race.pp_verdict v
  | Error e -> Format.printf "%-10s ww-RF:  error %s@." name e);
  match Race.rw_races prog with
  | Ok [] -> Format.printf "%-10s rw:     none@." name
  | Ok rs ->
      List.iter (fun r -> Format.printf "%-10s rw:     %a@." name Race.pp_race r) rs
  | Error e -> Format.printf "%-10s rw:     error %s@." name e

let () =
  report "ww_racy" (Litmus.find "ww_racy").prog;
  report "ww_sync" (Litmus.find "ww_sync").prog;
  report "fig4" (Litmus.find "fig4").prog;
  Format.printf "@.";

  (* Fig. 5: the source has no rw race; the LInv target does, and is
     nevertheless a refinement of the source. *)
  let src = (Litmus.find "fig5_src").prog in
  let tgt = (Litmus.find "fig5_tgt").prog in
  report "fig5_src" src;
  report "fig5_tgt" tgt;
  Format.printf "@.fig5 target refines source despite the rw race: %b@."
    (Explore.Refine.refines ~target:tgt ~source:src ());

  (* Lemma 5.1 on the corpus: ww-RF and ww-NPRF agree. *)
  let agree =
    List.for_all
      (fun (t : Litmus.t) ->
        let a = match Race.ww_rf t.prog with Ok Race.Free -> true | _ -> false in
        let b = match Race.ww_nprf t.prog with Ok Race.Free -> true | _ -> false in
        a = b)
      Litmus.all
  in
  Format.printf "ww-RF <=> ww-NPRF on the whole corpus: %b@." agree
