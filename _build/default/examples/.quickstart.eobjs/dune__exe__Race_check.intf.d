examples/race_check.mli:
