examples/race_check.ml: Explore Format List Litmus Race
