examples/litmus_tour.ml: Explore Format List Litmus String
