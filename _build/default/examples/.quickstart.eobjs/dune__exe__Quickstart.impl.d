examples/quickstart.ml: Explore Format Lang Ps
