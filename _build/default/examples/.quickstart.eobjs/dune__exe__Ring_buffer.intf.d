examples/ring_buffer.mli:
