examples/annotated_executions.mli:
