examples/annotated_executions.ml: Explore Format List Litmus String
