examples/optimize_pipeline.ml: Explore Format Lang Opt Race
