examples/verify_licm.mli:
