examples/quickstart.mli:
