examples/verify_licm.ml: Explore Format Lang List Litmus Opt Sim
