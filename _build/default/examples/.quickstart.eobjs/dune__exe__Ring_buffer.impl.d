examples/ring_buffer.ml: Explore Format Lang List Race String
