examples/litmus_tour.mli:
