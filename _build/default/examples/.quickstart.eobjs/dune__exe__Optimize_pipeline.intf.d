examples/optimize_pipeline.mli:
