(* The Fig. 1 story, end to end.

   LICM hoists a loop-invariant non-atomic read out of a loop.  With
   an *acquire* flag read inside the loop this is unsound — the
   hoisted read can observe a value the synchronized loop never could
   — and with a *relaxed* flag it is sound.  This example
   demonstrates all three verdicts the library can produce:

   1. the exhaustive refinement checker exhibits the counterexample
      trace for the acquire variant;
   2. the thread-local simulation checker (Sec. 6) fails the acquire
      variant and validates the relaxed one with the invariant Iid;
   3. the LICM implementation itself refuses to hoist across the
      acquire read, so optimizing the acquire variant is a no-op.

     dune exec examples/verify_licm.exe *)

let () =
  let foo_acq = (Litmus.find "fig1_foo").prog in
  let foo_opt_acq = (Litmus.find "fig1_foo_opt").prog in
  let foo_rlx = (Litmus.find "fig1_foo_rlx").prog in

  (* 1. The naive (hand-written) hoisting over the acquire read is a
     refinement violation — the paper's Fig. 1. *)
  let rep = Explore.Refine.check ~target:foo_opt_acq ~source:foo_acq () in
  Format.printf "naive hoist across acquire: %a@.@." Explore.Refine.pp_verdict
    rep.Explore.Refine.verdict;
  (match rep.Explore.Refine.verdict with
  | Explore.Refine.Violates _ -> ()
  | _ -> failwith "expected a violation");

  (* 2. The simulation game agrees: no simulation with Iid exists for
     the acquire variant, while the relaxed variant is simulated. *)
  let sim target source =
    Sim.Simcheck.check_program ~inv:Sim.Invariant.iid ~target ~source ()
  in
  List.iter
    (fun (f, v) -> Format.printf "acquire variant, %s: %a@." f Sim.Simcheck.pp_verdict v)
    (sim foo_opt_acq foo_acq);
  let hoisted_rlx = Opt.Pass.apply Opt.Licm.pass foo_rlx in
  List.iter
    (fun (f, v) -> Format.printf "relaxed variant, %s: %a@." f Sim.Simcheck.pp_verdict v)
    (sim hoisted_rlx foo_rlx);

  (* 3. The LICM implementation is mode-aware: it does not touch the
     acquire variant, and does hoist the relaxed one. *)
  let licm_acq = Opt.Pass.apply Opt.Licm.pass foo_acq in
  Format.printf "@.LICM on the acquire variant is a no-op: %b@."
    (Lang.Ast.equal_program licm_acq foo_acq);
  Format.printf "LICM on the relaxed variant hoists: %b@."
    (not (Lang.Ast.equal_program hoisted_rlx foo_rlx));
  Format.printf "hoisted relaxed variant refines its source: %b@."
    (Explore.Refine.refines ~target:hoisted_rlx ~source:foo_rlx ())
