(* The verification service (docs/SERVICE.md): wire-protocol and store
   round-trips, the cache-soundness rule (conclusive forever,
   inconclusive only to covered budgets, corruption is a miss), the
   config fingerprint's in/out contract, the admission gate, and one
   end-to-end daemon exchange over a real Unix-domain socket. *)

module Proto = Service.Proto
module Store = Service.Store
module Config = Explore.Config

(* --------------------------------------------------------------- *)
(* Generators *)

let gen_config =
  QCheck.Gen.(
    map
      (fun ( (max_steps, max_promises, promise_mode, reservations),
             (cert_fuel, cap_certification, memoize, cert_cache),
             (deadline_ms, max_nodes, max_live_words, strict_promises),
             (fault, domains, por, symmetry, bound_promises) ) ->
        {
          Config.max_steps;
          max_promises;
          promise_mode;
          reservations;
          cert_fuel;
          cap_certification;
          memoize;
          cert_cache;
          deadline_ms;
          max_nodes;
          max_live_words;
          strict_promises;
          fault;
          domains;
          oversubscribe = Config.default.Config.oversubscribe;
          publish_period = Config.default.Config.publish_period;
          reduction = { Config.por; symmetry; bound_promises };
        })
      (quad
         (quad (int_range 1 100_000) (int_range 0 8)
            (oneofl [ Config.No_promises; Config.Semantic; Config.Syntactic ])
            bool)
         (quad (int_range 1 10_000) bool bool bool)
         (quad
            (opt (int_range 0 10_000))
            (opt (int_range 1 1_000_000))
            (opt (int_range 1 1_000_000))
            bool)
         (tup5
            (opt
               (map
                  (fun (fault_seed, fault_rate) ->
                    { Config.fault_seed; fault_rate })
                  (pair (int_range 0 1_000) (float_bound_inclusive 1.0))))
            (int_range 1 8) bool bool
            (opt (int_range 0 4)))))

let config_arbitrary =
  QCheck.make ~print:(fun c -> Format.asprintf "%a" Config.pp c) gen_config

(* raw bytes, including NUL, parens, spaces, high bytes *)
let raw_string_arbitrary =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(string_size ~gen:(int_range 0 255 |> map Char.chr) (int_range 0 80))

(* --------------------------------------------------------------- *)
(* Protocol round-trips *)

let proto_props =
  [
    QCheck.Test.make ~count:500 ~name:"atom escape round-trips any bytes"
      raw_string_arbitrary (fun s ->
        Proto.string_of_atom (Proto.atom_of_string s) = Ok s);
    QCheck.Test.make ~count:300 ~name:"config sexp round-trips exactly"
      config_arbitrary (fun c ->
        Proto.config_of_sexp (Proto.sexp_of_config c) = Ok c);
    QCheck.Test.make ~count:200 ~name:"work request round-trips (stress corpus)"
      QCheck.(pair (int_bound 1_000) config_arbitrary)
      (fun (seed, config) ->
        let p = Explore.Stress.generate ~seed in
        let disc =
          if seed mod 2 = 0 then Explore.Enum.Interleaving
          else Explore.Enum.Non_preemptive
        in
        let req = Proto.Work (Proto.Explore (disc, p), config, None) in
        match Proto.request_of_sexp (Proto.sexp_of_request req) with
        | Ok (Proto.Work (Proto.Explore (disc', p'), config', None)) ->
            disc' = disc && Lang.Ast.equal_program p' p && config' = config
        | _ -> false);
    QCheck.Test.make ~count:300 ~name:"reply response round-trips"
      QCheck.(pair raw_string_arbitrary (int_bound 3))
      (fun (output, exit_code) ->
        let r =
          Proto.Reply
            { Proto.exit_code; output; cached = exit_code mod 2 = 0;
              conclusive = exit_code < 2 }
        in
        Proto.response_of_sexp (Proto.sexp_of_response r) = Ok r);
  ]

let test_proto_units () =
  (* the fixed-shape requests and responses *)
  List.iter
    (fun req ->
      Alcotest.(check bool)
        "request round-trips" true
        (Proto.request_of_sexp (Proto.sexp_of_request req) = Ok req))
    [ Proto.Ping; Proto.Stats; Proto.Metrics; Proto.Shutdown;
      Proto.Work (Proto.Litmus "sb", Config.default, None);
      Proto.Work (Proto.Verify ("dce", Litmus.sb.Litmus.prog), Config.quick, None);
      Proto.Work (Proto.Races Litmus.lb.Litmus.prog, Config.default, None);
      Proto.Work
        ( Proto.Litmus "sb", Config.default,
          Some { Obs.Trace.trace_id = "00ff00ff00ff00ff"; span_id = "0123456789abcdef" } ) ];
  List.iter
    (fun resp ->
      Alcotest.(check bool)
        "response round-trips" true
        (Proto.response_of_sexp (Proto.sexp_of_response resp) = Ok resp))
    [ Proto.Pong "1.2.3"; Proto.Shutting_down;
      Proto.Busy { inflight = 17; capacity = 16 };
      Proto.Shed { reason = Proto.Expired; inflight = 3; capacity = 4 };
      Proto.Shed { reason = Proto.Overload; inflight = 5; capacity = 4 };
      Proto.Refused "unknown pass: foo";
      Proto.Metrics_reply "# TYPE psopt_service_served_total counter\n";
      Proto.Metrics_reply "";
      Proto.Stats_reply
        { Proto.served = 1; store_hits = 2; store_misses = 3;
          busy_rejections = 4; errors = 5; store_entries = 6;
          store_corrupt = 9; inflight = 7; capacity = 8;
          sheds = 10; expired = 11; evictions = 12 } ];
  (* garbage never parses into a request or response *)
  List.iter
    (fun s ->
      let sx = Lang.Sexp.Atom s in
      Alcotest.(check bool) "garbage request rejected" true
        (Result.is_error (Proto.request_of_sexp sx));
      Alcotest.(check bool) "garbage response rejected" true
        (Result.is_error (Proto.response_of_sexp sx)))
    [ "nonsense"; ""; "ping2" ];
  Alcotest.(check bool) "kind tags distinguish subcommands" true
    (List.length
       (List.sort_uniq compare
          [ Proto.kind_tag (Proto.Explore (Explore.Enum.Interleaving, Litmus.sb.Litmus.prog));
            Proto.kind_tag (Proto.Explore (Explore.Enum.Non_preemptive, Litmus.sb.Litmus.prog));
            Proto.kind_tag (Proto.Verify ("dce", Litmus.sb.Litmus.prog));
            Proto.kind_tag (Proto.Races Litmus.sb.Litmus.prog);
            Proto.kind_tag (Proto.Litmus "sb") ])
    = 5)

let test_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a; Unix.close b)
    (fun () ->
      List.iter
        (fun payload ->
          (match Proto.write_frame a payload with
          | Ok () -> ()
          | Error e -> Alcotest.fail (Proto.error_to_string e));
          Alcotest.(check bool)
            (Printf.sprintf "frame of %d bytes round-trips"
               (String.length payload))
            true
            (Proto.read_frame b = Ok payload))
        [ ""; "x"; String.make 70_000 'q'; "(a (b c))" ];
      (* a full header claiming an absurd length is rejected as
         Corrupt, not allocated *)
      let lie = Bytes.make Proto.header_len '\000' in
      Bytes.set_int32_be lie 0 (Int32.of_int (Proto.max_frame + 1));
      let _ = Unix.write a lie 0 Proto.header_len in
      (match Proto.read_frame b with
      | Error (Proto.Corrupt _) -> ()
      | other ->
          Alcotest.failf "oversized length word: expected Corrupt, got %s"
            (match other with
            | Ok _ -> "Ok"
            | Error e -> Proto.error_to_string e)))

(* Satellite: the framing fault matrix — peers that close mid-header,
   close mid-payload, stall silently, or corrupt bytes in flight all
   surface as the right typed transport error, never an exception or a
   hang (docs/ROBUSTNESS.md). *)
let test_framing_faults () =
  let with_pair f =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close a with Unix.Unix_error _ -> ());
        try Unix.close b with Unix.Unix_error _ -> ())
      (fun () -> f a b)
  in
  (* a valid frame for surgery *)
  let frame_bytes payload =
    let c, d = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close c; Unix.close d)
      (fun () ->
        (match Proto.write_frame c payload with
        | Ok () -> ()
        | Error e -> Alcotest.fail (Proto.error_to_string e));
        let n = Proto.header_len + String.length payload in
        let buf = Bytes.create n in
        let rec fill off =
          if off < n then fill (off + Unix.read d buf off (n - off))
        in
        fill 0;
        buf)
  in
  let whole = frame_bytes "(ping)" in
  (* peer closes mid-length-prefix *)
  with_pair (fun a b ->
      let _ = Unix.write a whole 0 2 in
      Unix.close a;
      match Proto.read_frame b with
      | Error Proto.Closed -> ()
      | _ -> Alcotest.fail "mid-header close must be Closed");
  (* peer closes mid-payload *)
  with_pair (fun a b ->
      let _ = Unix.write a whole 0 (Proto.header_len + 2) in
      Unix.close a;
      match Proto.read_frame b with
      | Error Proto.Closed -> ()
      | _ -> Alcotest.fail "mid-payload close must be Closed");
  (* peer goes silent mid-header: the slowloris shape, caught by the
     io deadline with the phase that names it *)
  with_pair (fun a b ->
      let _ = Unix.write a whole 0 2 in
      match Proto.read_frame ~idle_timeout_s:5.0 ~io_timeout_s:0.05 b with
      | Error (Proto.Timed_out Proto.Header) -> ()
      | _ -> Alcotest.fail "mid-header stall must be Timed_out Header");
  (* peer goes silent mid-payload *)
  with_pair (fun a b ->
      let _ = Unix.write a whole 0 (Proto.header_len + 2) in
      match Proto.read_frame ~idle_timeout_s:5.0 ~io_timeout_s:0.05 b with
      | Error (Proto.Timed_out Proto.Payload) -> ()
      | _ -> Alcotest.fail "mid-payload stall must be Timed_out Payload");
  (* peer never starts a frame: the idle deadline, distinguishable
     from slowloris *)
  with_pair (fun _ b ->
      match Proto.read_frame ~idle_timeout_s:0.05 ~io_timeout_s:5.0 b with
      | Error (Proto.Timed_out Proto.Idle) -> ()
      | _ -> Alcotest.fail "idle peer must be Timed_out Idle");
  (* one payload byte flipped in flight: the checksum catches it *)
  with_pair (fun a b ->
      let mauled = Bytes.copy whole in
      let i = Proto.header_len + 1 in
      Bytes.set mauled i (Char.chr (Char.code (Bytes.get mauled i) lxor 0x40));
      let _ = Unix.write a mauled 0 (Bytes.length mauled) in
      match Proto.read_frame b with
      | Error (Proto.Corrupt _) -> ()
      | _ -> Alcotest.fail "flipped payload byte must be Corrupt");
  (* send path: peer already gone — a typed error, not SIGPIPE/exn.
     The payload exceeds the socket buffer so the write must block on
     a reader that will never come. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  with_pair (fun a b ->
      Unix.close b;
      match Proto.write_frame a (String.make 1_000_000 'x') with
      | Error (Proto.Closed | Proto.Io _) -> ()
      | Ok () -> Alcotest.fail "write to closed peer must fail"
      | Error e ->
          Alcotest.failf "write to closed peer: unexpected %s"
            (Proto.error_to_string e));
  (* send path: peer stops reading — the write deadline fires *)
  with_pair (fun a _ ->
      match Proto.write_frame ~timeout_s:0.05 a (String.make 4_000_000 'x') with
      | Error (Proto.Timed_out Proto.Write) -> ()
      | Ok () -> Alcotest.fail "unread 4MB write unexpectedly completed"
      | Error e ->
          Alcotest.failf "stalled write: unexpected %s"
            (Proto.error_to_string e))

(* --------------------------------------------------------------- *)
(* Store *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "psopt-test-store-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let budget ?deadline_ms ?max_nodes ?max_live_words steps =
  { Store.steps; deadline_ms; max_nodes; max_live_words }

let test_covers () =
  let check name expect cached request =
    Alcotest.(check bool) name expect (Store.covers ~cached ~request)
  in
  check "equal budgets cover" true (budget 100) (budget 100);
  check "larger steps cover" true (budget 200) (budget 100);
  check "smaller steps do not" false (budget 50) (budget 100);
  check "unlimited deadline covers a finite one" true
    (budget 100) (budget ~deadline_ms:5 100);
  check "finite deadline does not cover unlimited" false
    (budget ~deadline_ms:5 100) (budget 100);
  check "finite deadline covers a smaller one" true
    (budget ~deadline_ms:10 100) (budget ~deadline_ms:5 100);
  check "one stingy component sinks it" false
    (budget ~max_nodes:10 ~deadline_ms:1000 200)
    (budget ~max_nodes:20 ~deadline_ms:5 100);
  check "unlimited everywhere covers everything" true (budget max_int)
    (budget ~deadline_ms:1 ~max_nodes:1 ~max_live_words:1 1)

let entry ?(exit_code = 0) ?(output = "report\n") b =
  { Store.exit_code; output; conclusive = exit_code < 2; budget = b }

let record_path root key =
  Filename.concat (Filename.concat root (String.sub key 0 2)) (key ^ ".sexp")

let test_store_roundtrip () =
  let root = fresh_dir () in
  let store = Store.open_ root in
  let key =
    Store.key
      ~program_digest:(Store.program_digest Litmus.sb.Litmus.prog)
      ~kind:"explore:il"
      ~fingerprint:(Config.fingerprint Config.default)
  in
  Alcotest.(check bool) "empty store misses" true
    (Store.find store ~key ~budget:(budget 10) = None);
  let e = entry ~output:"line one\nline (two) \x00 100%\n" (budget 100) in
  Store.put store ~key e;
  Alcotest.(check bool) "peek returns the exact entry" true
    (Store.peek store key = Some e);
  Alcotest.(check int) "one record on disk" 1 (Store.entries store);
  (* reopening sees the record *)
  let store2 = Store.open_ root in
  Alcotest.(check bool) "reopened store still hits" true
    (Store.find store2 ~key ~budget:(budget 100) = Some e);
  Store.flush store

let test_store_completeness_rule () =
  let store = Store.open_ (fresh_dir ()) in
  let key = Store.key ~program_digest:"d" ~kind:"races" ~fingerprint:"f" in
  (* inconclusive: served only to covered budgets *)
  let trunc = entry ~exit_code:2 (budget ~max_nodes:50 100) in
  Store.put store ~key trunc;
  Alcotest.(check bool) "truncated served to an equal budget" true
    (Store.find store ~key ~budget:(budget ~max_nodes:50 100) = Some trunc);
  Alcotest.(check bool) "truncated served to a smaller budget" true
    (Store.find store ~key ~budget:(budget ~max_nodes:10 50) = Some trunc);
  Alcotest.(check bool) "truncated NOT served to a larger step budget" true
    (Store.find store ~key ~budget:(budget ~max_nodes:50 200) = None);
  Alcotest.(check bool) "truncated NOT served to an unlimited-nodes budget"
    true
    (Store.find store ~key ~budget:(budget 100) = None);
  (* conclusive: served under any budget, however large *)
  let concl = entry ~exit_code:1 (budget 10) in
  Store.put store ~key concl;
  Alcotest.(check bool) "conclusive overwrites" true
    (Store.peek store key = Some concl);
  Alcotest.(check bool) "conclusive served to a huge budget" true
    (Store.find store ~key ~budget:(budget max_int) = Some concl)

let test_store_corruption () =
  let root = fresh_dir () in
  let store = Store.open_ root in
  let key = Store.key ~program_digest:"p" ~kind:"litmus:sb" ~fingerprint:"f" in
  let e = entry (budget 100) in
  (* every damaged-but-present record must also tick [corrupt_misses];
     a deleted record is a plain miss and must not *)
  let damage ?(counts = true) name f =
    Store.put store ~key e;
    f (record_path root key);
    let before = Store.corrupt_misses store in
    Alcotest.(check bool) (name ^ ": peek is a clean miss") true
      (Store.peek store key = None);
    Alcotest.(check bool) (name ^ ": find is a clean miss") true
      (Store.find store ~key ~budget:(budget 10) = None);
    let delta = Store.corrupt_misses store - before in
    Alcotest.(check bool)
      (name
      ^
      if counts then ": corrupt-miss counter ticks"
      else ": corrupt-miss counter untouched")
      true
      (if counts then delta > 0 else delta = 0)
  in
  damage "truncated record" (fun p ->
      let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
      Unix.ftruncate fd 7;
      Unix.close fd);
  damage "garbled record" (fun p ->
      Out_channel.with_open_bin p (fun oc ->
          Out_channel.output_string oc "(((((((not a record \x01\x02"));
  damage "wrong version" (fun p ->
      let s = In_channel.with_open_bin p In_channel.input_all in
      let needle = "(version 1)" in
      let i =
        let rec find i =
          if i + String.length needle > String.length s then
            Alcotest.fail "record has no version field"
          else if String.sub s i (String.length needle) = needle then i
          else find (i + 1)
        in
        find 0
      in
      Out_channel.with_open_bin p (fun oc ->
          Out_channel.output_string oc (String.sub s 0 i);
          Out_channel.output_string oc "(version 99)";
          Out_channel.output_string oc
            (String.sub s
               (i + String.length needle)
               (String.length s - i - String.length needle))));
  damage "empty file" (fun p ->
      Out_channel.with_open_bin p (fun oc -> ignore oc));
  damage ~counts:false "record deleted" Sys.remove;
  (* a key echo mismatch (record copied to the wrong address) misses *)
  Store.put store ~key e;
  let other = Store.key ~program_digest:"p2" ~kind:"litmus:sb" ~fingerprint:"f" in
  let src = In_channel.with_open_bin (record_path root key) In_channel.input_all in
  let dst = record_path root other in
  (try Unix.mkdir (Filename.dirname dst) 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Out_channel.with_open_bin dst (fun oc -> Out_channel.output_string oc src);
  Alcotest.(check bool) "misplaced record is a miss" true
    (Store.peek store other = None)

let store_props =
  [
    QCheck.Test.make ~count:100 ~name:"store round-trips any output bytes"
      QCheck.(pair raw_string_arbitrary (int_bound 2))
      (let store = lazy (Store.open_ (fresh_dir ())) in
       let n = ref 0 in
       fun (output, exit_code) ->
         incr n;
         let store = Lazy.force store in
         let key =
           Store.key ~program_digest:(string_of_int !n) ~kind:"races"
             ~fingerprint:"fp"
         in
         let e = entry ~exit_code ~output (budget 100) in
         Store.put store ~key e;
         Store.peek store key = Some e);
  ]

(* --------------------------------------------------------------- *)
(* Fingerprint contract *)

let test_fingerprint () =
  let fp = Config.fingerprint in
  let d = Config.default in
  let same name c =
    Alcotest.(check string) (name ^ " leaves the fingerprint alone") (fp d)
      (fp c)
  in
  let differs name c =
    Alcotest.(check bool) (name ^ " changes the fingerprint") true
      (fp c <> fp d)
  in
  (* perf switches and budgets are out *)
  same "memoize" { d with Config.memoize = not d.Config.memoize };
  same "cert_cache" { d with Config.cert_cache = not d.Config.cert_cache };
  same "domains" { d with Config.domains = 7 };
  same "max_steps" { d with Config.max_steps = 1 };
  same "deadline_ms" { d with Config.deadline_ms = Some 1 };
  same "max_nodes" { d with Config.max_nodes = Some 1 };
  same "max_live_words" { d with Config.max_live_words = Some 1 };
  (* semantic fields are in *)
  differs "max_promises" { d with Config.max_promises = d.Config.max_promises + 1 };
  differs "promise_mode" { d with Config.promise_mode = Config.No_promises };
  differs "reservations" { d with Config.reservations = not d.Config.reservations };
  differs "cert_fuel" { d with Config.cert_fuel = d.Config.cert_fuel + 1 };
  differs "cap_certification"
    { d with Config.cap_certification = not d.Config.cap_certification };
  differs "strict_promises"
    { d with Config.strict_promises = not d.Config.strict_promises };
  differs "fault"
    { d with Config.fault = Some { Config.fault_seed = 1; fault_rate = 0.5 } };
  (* the reduction knobs are in: bound_promises changes completeness,
     por changes the reported Open prefixes, and a store keyed without
     them could hand a reduced result to an unreduced query *)
  let red r = { d with Config.reduction = r } in
  differs "reduction.por" (red { Config.no_reduction with Config.por = true });
  differs "reduction.symmetry"
    (red { Config.no_reduction with Config.symmetry = true });
  differs "reduction.bound_promises"
    (red { Config.no_reduction with Config.bound_promises = Some 2 });
  differs "reduction.bound_promises value"
    (red { Config.no_reduction with Config.bound_promises = Some 3 });
  differs "full_reduction" (red Config.full_reduction)

(* --------------------------------------------------------------- *)
(* Admission gate *)

let test_admission () =
  let module A = Service.Server.Admission in
  let a = A.create ~capacity:0 in
  (match A.try_run a (fun () -> 41 + 1) with
  | `Done n -> Alcotest.(check int) "idle gate runs in the slot" 42 n
  | `Busy _ | `Shed | `Expired -> Alcotest.fail "idle gate refused work");
  Alcotest.(check int) "idle gate has no inflight work" 0 (A.inflight a);
  (* occupy the slot from another thread, then overflow *)
  let m = Mutex.create () in
  let c = Condition.create () in
  let release = ref false in
  let occupant =
    Thread.create
      (fun () ->
        A.try_run a (fun () ->
            Mutex.lock m;
            while not !release do
              Condition.wait c m
            done;
            Mutex.unlock m))
      ()
  in
  while A.inflight a = 0 do
    Thread.yield ()
  done;
  (match A.try_run a (fun () -> ()) with
  | `Busy inflight ->
      Alcotest.(check int) "Busy reports the occupant" 1 inflight
  | `Done _ | `Shed | `Expired ->
      Alcotest.fail "capacity-0 gate admitted past the slot");
  Mutex.lock m;
  release := true;
  Condition.broadcast c;
  Mutex.unlock m;
  (match Thread.join occupant with () -> ());
  A.drain a;
  Alcotest.(check int) "drained gate is empty" 0 (A.inflight a)

(* A slot occupant the test controls: holds the gate until [free] is
   called, signalling once it is actually running. *)
let occupy gate =
  let module A = Service.Server.Admission in
  let m = Mutex.create () in
  let c = Condition.create () in
  let running = ref false and release = ref false in
  let th =
    Thread.create
      (fun () ->
        A.try_run gate (fun () ->
            Mutex.lock m;
            running := true;
            Condition.broadcast c;
            while not !release do
              Condition.wait c m
            done;
            Mutex.unlock m))
      ()
  in
  Mutex.lock m;
  while not !running do
    Condition.wait c m
  done;
  Mutex.unlock m;
  fun () ->
    Mutex.lock m;
    release := true;
    Condition.broadcast c;
    Mutex.unlock m;
    Thread.join th

let test_admission_deadline () =
  let module A = Service.Server.Admission in
  let a = A.create ~capacity:4 in
  (* a deadline already in the past is refused before queueing *)
  let free = occupy a in
  (match
     A.try_run a ~deadline_ns:(Obs.Clock.now_ns () - 1) (fun () -> ())
   with
  | `Expired -> ()
  | _ -> Alcotest.fail "past deadline must be Expired");
  (* a waiter whose deadline passes while queued expires on a tick,
     without ever holding the slot *)
  let result :
      [ `Pending | `Busy of int | `Done of unit | `Expired | `Shed ] ref =
    ref `Pending
  in
  let waiter =
    Thread.create
      (fun () ->
        result :=
          (A.try_run a
             ~deadline_ns:(Obs.Clock.now_ns () + 20_000_000)
             (fun () -> ())
            :> [ `Pending | `Busy of int | `Done of unit | `Expired | `Shed ]))
      ()
  in
  let t0 = Unix.gettimeofday () in
  while !result = `Pending && Unix.gettimeofday () -. t0 < 5.0 do
    Thread.delay 0.005;
    A.tick a
  done;
  Thread.join waiter;
  (match !result with
  | `Expired -> ()
  | `Pending -> Alcotest.fail "queued waiter never expired (hang)"
  | _ -> Alcotest.fail "queued waiter past its deadline must be Expired");
  free ();
  A.drain a

type gate_outcome =
  [ `Pending | `Busy of int | `Done of [ `Ran ] | `Expired | `Shed ]

let test_admission_priority () =
  let module A = Service.Server.Admission in
  let a = A.create ~capacity:1 in
  let free = occupy a in
  (* a Normal waiter fills the queue *)
  let normal : gate_outcome ref = ref `Pending in
  let normal_th =
    Thread.create
      (fun () ->
        normal := (A.try_run a ~prio:A.Normal (fun () -> `Ran) :> gate_outcome))
      ()
  in
  while A.inflight a < 2 do
    Thread.yield ()
  done;
  (* a Normal arrival at the full queue bounces Busy *)
  (match A.try_run a ~prio:A.Normal (fun () -> ()) with
  | `Busy _ -> ()
  | _ -> Alcotest.fail "full queue must answer Busy to Normal");
  (* a High arrival preempts the queued Normal waiter instead *)
  let high : gate_outcome ref = ref `Pending in
  let high_th =
    Thread.create
      (fun () ->
        high := (A.try_run a ~prio:A.High (fun () -> `Ran) :> gate_outcome))
      ()
  in
  (* the preempted Normal waiter observes Shed *)
  Thread.join normal_th;
  (match !normal with
  | `Shed -> ()
  | _ -> Alcotest.fail "preempted Normal waiter must observe Shed");
  (* once the occupant leaves, the High waiter runs *)
  free ();
  Thread.join high_th;
  (match !high with
  | `Done `Ran -> ()
  | _ -> Alcotest.fail "High waiter must run after the slot frees");
  A.drain a

(* --------------------------------------------------------------- *)
(* serve_work: the store-aware path shared by daemon and bench *)

let test_serve_work () =
  let store = Store.open_ (fresh_dir ()) in
  let stats = Explore.Stats.Service.create () in
  let w = Proto.Litmus Litmus.sb.Litmus.name in
  let ask () = Service.Server.serve_work ~store ~stats w Config.default in
  let direct =
    match Service.Server.run_work w Config.default with
    | Ok (out, code) -> (out, code)
    | Error e -> Alcotest.fail e
  in
  (match ask () with
  | Proto.Reply r ->
      Alcotest.(check bool) "first serve is a miss" false r.Proto.cached;
      Alcotest.(check string) "serve output = direct output" (fst direct)
        r.Proto.output;
      Alcotest.(check int) "serve code = direct code" (snd direct)
        r.Proto.exit_code
  | _ -> Alcotest.fail "expected a Reply");
  (match ask () with
  | Proto.Reply r ->
      Alcotest.(check bool) "second serve is a hit" true r.Proto.cached;
      Alcotest.(check string) "cached output identical" (fst direct)
        r.Proto.output
  | _ -> Alcotest.fail "expected a Reply");
  Alcotest.(check int) "one miss counted" 1
    (Atomic.get stats.Explore.Stats.Service.store_misses);
  Alcotest.(check int) "one hit counted" 1
    (Atomic.get stats.Explore.Stats.Service.store_hits);
  (* errors are refused, not cached *)
  (match
     Service.Server.serve_work ~store ~stats (Proto.Litmus "no-such-litmus")
       Config.default
   with
  | Proto.Refused _ -> ()
  | _ -> Alcotest.fail "unknown litmus name must be Refused");
  (* the conclusive verdict above is served even to a tighter budget:
     budgets are not part of the key, and exit 0/1 holds forever *)
  (match
     Service.Server.serve_work ~store ~stats w
       { Config.default with Config.max_steps = 3 }
   with
  | Proto.Reply r ->
      Alcotest.(check bool) "conclusive served across budgets" true
        r.Proto.cached
  | _ -> Alcotest.fail "expected a Reply");
  (* a truncated result is recomputed under a larger budget — fresh
     store so the conclusive record above doesn't shadow the scenario *)
  let store = Store.open_ (fresh_dir ()) in
  let tight = { Config.default with Config.max_steps = 3 } in
  (match Service.Server.serve_work ~store ~stats w tight with
  | Proto.Reply r ->
      Alcotest.(check int) "tight budget is inconclusive" 2 r.Proto.exit_code;
      Alcotest.(check bool) "inconclusive is not conclusive" false
        r.Proto.conclusive
  | _ -> Alcotest.fail "expected a Reply");
  (match
     Service.Server.serve_work ~store ~stats w
       { Config.default with Config.max_steps = 4 }
   with
  | Proto.Reply r ->
      Alcotest.(check bool)
        "larger budget re-runs instead of reusing the truncation" false
        r.Proto.cached
  | _ -> Alcotest.fail "expected a Reply")

(* --------------------------------------------------------------- *)
(* End to end: a real daemon on a real socket *)

(* Start a daemon on a fresh socket, hand it to [f], shut it down and
   check it exits cleanly.  [configure] tweaks the default config. *)
let socket_counter = ref 0

let with_daemon ?(configure = fun c -> c) f =
  incr socket_counter;
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)
  in
  let cfg =
    configure { (Service.Server.default ~socket) with quiet = true }
  in
  let m = Mutex.create () in
  let c = Condition.create () in
  let ready = ref false in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        server_result :=
          Service.Server.run
            ~on_ready:(fun () ->
              Mutex.lock m;
              ready := true;
              Condition.signal c;
              Mutex.unlock m)
            cfg)
      ()
  in
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Fun.protect
    ~finally:(fun () ->
      (match Service.Client.shutdown ~socket with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("shutdown: " ^ e));
      Thread.join server;
      match !server_result with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("server exit: " ^ e))
    (fun () -> f socket)

let contains text needle =
  let nh = String.length text and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub text i nn = needle || go (i + 1)) in
  go 0

let test_server_e2e () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-test-%d.sock" (Unix.getpid ()))
  in
  let store_dir = fresh_dir () in
  let m = Mutex.create () in
  let c = Condition.create () in
  let ready = ref false in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        server_result :=
          Service.Server.run
            ~on_ready:(fun () ->
              Mutex.lock m;
              ready := true;
              Condition.signal c;
              Mutex.unlock m)
            { (Service.Server.default ~socket) with
              store_dir = Some store_dir;
              capacity = 4;
              quiet = true })
      ()
  in
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  (* ping: liveness + version *)
  (match Service.Client.ping ~socket with
  | Ok v ->
      Alcotest.(check string) "ping returns the build version"
        Service.Version.version v
  | Error e -> Alcotest.fail ("ping: " ^ e));
  (* the same work twice over the wire: miss then hit, identical bytes *)
  let req = Proto.Work (Proto.Litmus Litmus.lb.Litmus.name, Config.default, None) in
  let ask () =
    match
      Service.Client.with_client ~socket (fun cl ->
          Service.Client.rpc_wait cl req)
    with
    | Ok (Ok (Proto.Reply r)) -> r
    | Ok (Ok _) -> Alcotest.fail "expected a Reply"
    | Ok (Error e) | Error e -> Alcotest.fail e
  in
  let r1 = ask () in
  let r2 = ask () in
  Alcotest.(check bool) "first wire request misses" false r1.Proto.cached;
  Alcotest.(check bool) "second wire request hits" true r2.Proto.cached;
  Alcotest.(check string) "wire outputs byte-identical" r1.Proto.output
    r2.Proto.output;
  Alcotest.(check int) "wire exit codes equal" r1.Proto.exit_code
    r2.Proto.exit_code;
  (* stats reflect the exchange *)
  (match
     Service.Client.with_client ~socket (fun cl ->
         Service.Client.rpc cl Proto.Stats)
   with
  | Ok (Ok (Proto.Stats_reply s)) ->
      Alcotest.(check int) "stats: one store hit" 1 s.Proto.store_hits;
      Alcotest.(check int) "stats: one store miss" 1 s.Proto.store_misses;
      Alcotest.(check int) "stats: one record" 1 s.Proto.store_entries;
      Alcotest.(check int) "stats: nothing inflight" 0 s.Proto.inflight;
      Alcotest.(check int) "stats: no corrupt records" 0 s.Proto.store_corrupt
  | Ok (Ok _) | Ok (Error _) | Error _ -> Alcotest.fail "stats request failed");
  (* the metrics exposition carries the service families, with the
     counters agreeing with the exchange above *)
  (match Service.Client.metrics ~socket with
  | Ok text ->
      let contains needle =
        let nh = String.length text and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun family ->
          Alcotest.(check bool) ("metrics exposes " ^ family) true
            (contains family))
        [ "psopt_service_store_hits_total 1";
          "psopt_service_store_misses_total 1";
          "psopt_service_store_corrupt_total 0";
          "psopt_service_request_duration_ns_count";
          "psopt_store_lookup_duration_ns_bucket";
          "# TYPE psopt_service_request_duration_ns histogram" ]
  | Error e -> Alcotest.fail ("metrics: " ^ e));
  (* graceful shutdown: drains, unlinks the socket, run returns Ok *)
  (match Service.Client.shutdown ~socket with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("shutdown: " ^ e));
  Thread.join server;
  (match !server_result with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server exit: " ^ e));
  Alcotest.(check bool) "socket unlinked after shutdown" false
    (Sys.file_exists socket)

(* A wedged client dribbles two header bytes and stalls: the server
   must evict the connection on its mid-frame I/O deadline (observable
   as EOF from the client side), count it, and expose it in both the
   Stats payload and the metrics exposition. *)
let test_server_slowloris () =
  with_daemon
    ~configure:(fun c -> { c with io_timeout_s = 0.1; idle_timeout_s = 10.0 })
    (fun socket ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let _ = Unix.write fd (Bytes.make 2 '\001') 0 2 in
          (* the server must hang up on us, not wait forever *)
          match Unix.select [ fd ] [] [] 5.0 with
          | [], _, _ -> Alcotest.fail "server kept the wedged connection"
          | _ ->
              Alcotest.(check int) "evicted connection reads EOF" 0
                (Unix.read fd (Bytes.create 1) 0 1));
      (* the eviction is visible in the service counters... *)
      (match
         Service.Client.with_client ~socket (fun cl ->
             Service.Client.rpc cl Proto.Stats)
       with
      | Ok (Ok (Proto.Stats_reply s)) ->
          Alcotest.(check int) "stats count the eviction" 1 s.Proto.evictions
      | _ -> Alcotest.fail "stats request failed");
      (* ...and in the scraped metrics, labeled with the reason *)
      match Service.Client.metrics ~socket with
      | Ok text ->
          Alcotest.(check bool) "metrics expose the slowloris eviction" true
            (contains text
               "psopt_service_conn_evictions_total{reason=\"slowloris\"}")
      | Error e -> Alcotest.fail ("metrics: " ^ e))

(* Deadlines propagate: a server-side request-deadline cap shrinks the
   exploration budget, so an overrun comes back as the honest
   inconclusive verdict (exit 2) — never a dropped connection.  A
   request whose deadline has already passed is answered with the
   typed Shed reply, and the shed shows up in the scraped metrics. *)
let test_server_deadline_cap () =
  with_daemon
    ~configure:(fun c ->
      { c with store_dir = None; request_deadline_ms = Some 5 })
    (fun socket ->
      let config =
        { Config.default with Config.max_steps = 1_000_000; domains = 1 }
      in
      let overran = ref false in
      let seed = ref 0 in
      while (not !overran) && !seed < 10 do
        incr seed;
        let p = Explore.Stress.generate ~seed:!seed in
        match
          Service.Client.with_client ~socket (fun cl ->
              Service.Client.rpc cl
                (Proto.Work (Proto.Explore (Explore.Enum.Interleaving, p), config, None)))
        with
        | Ok (Ok (Proto.Reply r)) ->
            if r.Proto.exit_code = 2 then begin
              Alcotest.(check bool) "overrun reply is not conclusive" false
                r.Proto.conclusive;
              overran := true
            end
        | Ok (Ok (Proto.Shed _)) -> ()  (* admitted too late: also legal *)
        | Ok (Ok other) ->
            Alcotest.failf "unexpected response: %s"
              (match other with
              | Proto.Refused m -> "Refused " ^ m
              | _ -> "non-Reply")
        | Ok (Error e) | Error e -> Alcotest.fail e
      done;
      Alcotest.(check bool)
        "some exploration overran the 5ms server cap into inconclusive" true
        !overran;
      (* a request that arrives already expired is shed, typed *)
      (match
         Service.Client.with_client ~socket (fun cl ->
             Service.Client.rpc cl
               (Proto.Work
                  ( Proto.Litmus Litmus.sb.Litmus.name,
                    { Config.default with Config.deadline_ms = Some 0 },
                    None )))
       with
      | Ok (Ok (Proto.Shed { reason = Proto.Expired; _ })) -> ()
      | Ok (Ok _) -> Alcotest.fail "already-expired work must be Shed Expired"
      | Ok (Error e) | Error e -> Alcotest.fail e);
      match Service.Client.metrics ~socket with
      | Ok text ->
          Alcotest.(check bool) "metrics expose the expiry shed" true
            (contains text "psopt_service_shed_total{reason=\"expired\"}")
      | Error e -> Alcotest.fail ("metrics: " ^ e))

(* --------------------------------------------------------------- *)

let () =
  Alcotest.run "service"
    [
      ( "proto",
        Alcotest.test_case "fixed requests/responses + garbage" `Quick
          test_proto_units
        :: Alcotest.test_case "framing over a socketpair" `Quick test_framing
        :: Alcotest.test_case "framing fault matrix (truncation, stall, flip)"
             `Quick test_framing_faults
        :: List.map QCheck_alcotest.to_alcotest proto_props );
      ( "store",
        Alcotest.test_case "covers is componentwise" `Quick test_covers
        :: Alcotest.test_case "put/peek/find/reopen" `Quick
             test_store_roundtrip
        :: Alcotest.test_case "conclusive forever, truncated only covered"
             `Quick test_store_completeness_rule
        :: Alcotest.test_case "corruption is a clean miss" `Quick
             test_store_corruption
        :: List.map QCheck_alcotest.to_alcotest store_props );
      ( "fingerprint",
        [ Alcotest.test_case "semantic in, perf + budgets out" `Quick
            test_fingerprint ] );
      ( "server",
        [
          Alcotest.test_case "admission gate" `Quick test_admission;
          Alcotest.test_case "admission deadlines expire waiters" `Quick
            test_admission_deadline;
          Alcotest.test_case "admission priority preempts the youngest"
            `Quick test_admission_priority;
          Alcotest.test_case "serve_work: miss, hit, refuse, budget re-run"
            `Quick test_serve_work;
          Alcotest.test_case "end-to-end daemon exchange" `Quick
            test_server_e2e;
          Alcotest.test_case "slowloris connection evicted + counted" `Quick
            test_server_slowloris;
          Alcotest.test_case "deadline cap: overrun is inconclusive, typed shed"
            `Quick test_server_deadline_cap;
        ] );
    ]
