(* Rational timestamps: unit tests and algebraic properties. *)

let rat = Alcotest.testable Rat.pp Rat.equal

let check_rat = Alcotest.check rat

(* ------------------------------------------------------------------ *)
(* Unit tests *)

let test_normalization () =
  check_rat "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  check_rat "-6/-4 = 3/2" (Rat.make 3 2) (Rat.make (-6) (-4));
  check_rat "6/-4 = -3/2" (Rat.make (-3) 2) (Rat.make 6 (-4));
  check_rat "0/7 = 0" Rat.zero (Rat.make 0 7);
  Alcotest.check_raises "den 0" Division_by_zero (fun () ->
      ignore (Rat.make 1 0))

let test_arith () =
  check_rat "1/2 + 1/3" (Rat.make 5 6) (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  check_rat "1/2 - 1/3" (Rat.make 1 6) (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  check_rat "2/3 * 3/4" (Rat.make 1 2) (Rat.mul (Rat.make 2 3) (Rat.make 3 4));
  check_rat "1/2 / 1/4" (Rat.of_int 2) (Rat.div (Rat.make 1 2) (Rat.make 1 4));
  check_rat "neg" (Rat.make (-1) 2) (Rat.neg (Rat.make 1 2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div Rat.one Rat.zero))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Rat.lt (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.(check bool) "le refl" true (Rat.le Rat.one Rat.one);
  Alcotest.(check bool) "gt" true (Rat.gt (Rat.of_int 2) Rat.one);
  Alcotest.(check bool) "ge eq" true (Rat.ge Rat.one Rat.one);
  check_rat "min" Rat.zero (Rat.min Rat.zero Rat.one);
  check_rat "max" Rat.one (Rat.max Rat.zero Rat.one)

let test_midpoint () =
  let a = Rat.make 1 3 and b = Rat.make 1 2 in
  let m = Rat.midpoint a b in
  Alcotest.(check bool) "a < mid" true (Rat.lt a m);
  Alcotest.(check bool) "mid < b" true (Rat.lt m b);
  check_rat "midpoint value" (Rat.make 5 12) m

let test_succ_int () =
  check_rat "succ 0" Rat.one (Rat.succ Rat.zero);
  Alcotest.(check bool) "is_integer 3" true (Rat.is_integer (Rat.of_int 3));
  Alcotest.(check bool) "not integer 1/2" false (Rat.is_integer (Rat.make 1 2))

let test_pp () =
  Alcotest.(check string) "int pp" "5" (Rat.to_string (Rat.of_int 5));
  Alcotest.(check string) "frac pp" "5/12" (Rat.to_string (Rat.make 5 12));
  Alcotest.(check string) "neg pp" "-1/2" (Rat.to_string (Rat.make 1 (-2)))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "to_float" 0.5 (Rat.to_float (Rat.make 1 2))

(* ------------------------------------------------------------------ *)
(* Overflow regression: deep timestamp chains.

   Canonical slotting halves the same gap once per write, doubling the
   denominator each time; a long execution therefore leaves native-int
   range quickly.  The all-native seed implementation wrapped its
   cross products — first silently misordering timestamps, then dying
   with [Division_by_zero] once a denominator product wrapped to 0.
   These tests iterate the exact operations {!Explore} performs
   ({!Rat.midpoint}, {!Rat.succ}, the thirds of [Memory.detached])
   thousands of times and check the ordering invariants throughout. *)

let test_deep_midpoint_chain () =
  let lo = ref Rat.zero and hi = ref Rat.one in
  for i = 1 to 2000 do
    let m = Rat.midpoint !lo !hi in
    Alcotest.(check bool)
      (Printf.sprintf "lo < mid at iteration %d" i)
      true (Rat.lt !lo m);
    Alcotest.(check bool)
      (Printf.sprintf "mid < hi at iteration %d" i)
      true (Rat.lt m !hi);
    if i mod 2 = 0 then lo := m else hi := m
  done;
  (* the chain stays inside the unit interval *)
  Alcotest.(check bool) "0 <= lo" true (Rat.le Rat.zero !lo);
  Alcotest.(check bool) "hi <= 1" true (Rat.le !hi Rat.one)

let test_deep_succ_chain () =
  let t = ref Rat.zero in
  for _ = 1 to 5000 do
    let t' = Rat.succ !t in
    assert (Rat.lt !t t');
    t := t'
  done;
  check_rat "5000 succs" (Rat.of_int 5000) !t;
  (* succ distributes over a big fraction *)
  let deep = ref (Rat.make 1 2) in
  for _ = 1 to 100 do
    deep := Rat.midpoint Rat.zero !deep
  done;
  Alcotest.(check bool) "succ of deep fraction > deep" true
    (Rat.lt !deep (Rat.succ !deep))

let test_deep_thirds_chain () =
  (* the [Memory.detached] slotting pattern: occupy the middle third *)
  let a = ref Rat.zero and b = ref Rat.one in
  for i = 1 to 600 do
    let third = Rat.div (Rat.sub !b !a) (Rat.of_int 3) in
    let f = Rat.add !a third and t = Rat.sub !b third in
    Alcotest.(check bool)
      (Printf.sprintf "a < f < t < b at iteration %d" i)
      true
      (Rat.lt !a f && Rat.lt f t && Rat.lt t !b);
    a := f;
    b := t
  done

let test_big_small_boundary () =
  (* values crossing the native/bignum boundary compare and hash
     consistently, whatever path constructed them *)
  let a = Rat.make 12345678901234567 89 in
  let b = Rat.sub (Rat.add a Rat.one) Rat.one in
  check_rat "add/sub roundtrip across boundary" a b;
  Alcotest.(check int) "hash agrees" (Rat.hash a) (Rat.hash b);
  let big = Rat.make max_int 3 in
  check_rat "mul back to integer" (Rat.of_int max_int)
    (Rat.mul big (Rat.of_int 3));
  Alcotest.(check bool) "big comparison" true
    (Rat.lt (Rat.make (max_int - 1) max_int) Rat.one);
  Alcotest.(check bool) "min_int magnitudes" true
    (Rat.equal (Rat.make min_int min_int) Rat.one);
  Alcotest.(check bool) "negative big" true
    (Rat.lt (Rat.make min_int 1) Rat.zero)

(* ------------------------------------------------------------------ *)
(* Bignat backend *)

module N = Rat.Bignat

let test_bignat_small_oracle () =
  (* cross-check every operation against native ints where they fit *)
  let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b) in
  for i = 0 to 500 do
    let x = (i * 7919 + 13) * ((i mod 97) + 1) and y = (i * 10473) + 3 in
    let bx = N.of_int x and by = N.of_int y in
    Alcotest.(check (option int)) "add" (Some (x + y)) (N.to_int_opt (N.add bx by));
    Alcotest.(check (option int)) "mul" (Some (x * y)) (N.to_int_opt (N.mul bx by));
    let q, r = N.divmod bx by in
    Alcotest.(check (option int)) "div" (Some (x / y)) (N.to_int_opt q);
    Alcotest.(check (option int)) "mod" (Some (x mod y)) (N.to_int_opt r);
    Alcotest.(check (option int)) "gcd" (Some (gcd_int x y))
      (N.to_int_opt (N.gcd bx by));
    Alcotest.(check string) "decimal" (string_of_int x) (N.to_string bx)
  done

let test_bignat_large () =
  (* (2^200)^2 / 2^200 = 2^200; divmod and shifting round-trip *)
  let p200 = N.shift_left N.one 200 in
  let sq = N.mul p200 p200 in
  let q, r = N.divmod sq p200 in
  Alcotest.(check bool) "square/div roundtrip" true (N.equal q p200);
  Alcotest.(check bool) "no remainder" true (N.is_zero r);
  Alcotest.(check int) "bit_length 2^200" 201 (N.bit_length p200);
  (* subtraction: 2^200 - (2^200 - 1) = 1 *)
  let m1 = N.sub p200 N.one in
  Alcotest.(check bool) "sub borrow chain" true (N.equal (N.sub p200 m1) N.one);
  (* gcd of 2^200 and 3*2^100 is 2^100 *)
  let p100 = N.shift_left N.one 100 in
  let three_p100 = N.mul (N.of_int 3) p100 in
  Alcotest.(check bool) "gcd powers of two" true
    (N.equal (N.gcd p200 three_p100) p100);
  Alcotest.(check string) "2^100 decimal" "1267650600228229401496703205376"
    (N.to_string p100)

(* ------------------------------------------------------------------ *)
(* Properties *)

let rat_gen =
  QCheck.make
    ~print:(fun r -> Rat.to_string r)
    (QCheck.Gen.map2
       (fun n d -> Rat.make n d)
       (QCheck.Gen.int_range (-1000) 1000)
       (QCheck.Gen.int_range 1 1000))

(* Rationals spanning the native/bignum boundary: numerators and
   denominators up to 2^62-1, far beyond the 2^30 fast-path bound. *)
let rat_gen_wide =
  QCheck.make
    ~print:(fun r -> Rat.to_string r)
    (QCheck.Gen.map2
       (fun n d -> Rat.make n d)
       (QCheck.Gen.oneof
          [
            QCheck.Gen.int_range (-1000) 1000;
            QCheck.Gen.int_range (-max_int) max_int;
          ])
       (QCheck.Gen.oneof
          [
            QCheck.Gen.int_range 1 1000;
            QCheck.Gen.int_range 1 max_int;
          ]))

let prop name law = QCheck.Test.make ~count:500 ~name law

let props =
  [
    prop "add commutative" (QCheck.pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    prop "add associative"
      (QCheck.triple rat_gen rat_gen rat_gen)
      (fun (a, b, c) ->
        Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    prop "mul distributes"
      (QCheck.triple rat_gen rat_gen rat_gen)
      (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c))
          (Rat.add (Rat.mul a b) (Rat.mul a c)));
    prop "sub then add" (QCheck.pair rat_gen rat_gen) (fun (a, b) ->
        Rat.equal a (Rat.add (Rat.sub a b) b));
    prop "compare total order"
      (QCheck.pair rat_gen rat_gen)
      (fun (a, b) ->
        let c = Rat.compare a b in
        (c = 0) = Rat.equal a b
        && (c < 0) = Rat.lt a b
        && (c > 0) = Rat.gt a b);
    prop "midpoint strictly between"
      (QCheck.pair rat_gen rat_gen)
      (fun (a, b) ->
        QCheck.assume (not (Rat.equal a b));
        let lo = Rat.min a b and hi = Rat.max a b in
        let m = Rat.midpoint lo hi in
        Rat.lt lo m && Rat.lt m hi);
    prop "normal form: equal iff compare 0"
      (QCheck.pair rat_gen rat_gen)
      (fun (a, b) -> Rat.equal a b = (Rat.compare a b = 0));
    prop "hash respects equality" rat_gen (fun a ->
        Rat.hash a = Rat.hash (Rat.add a Rat.zero));
    prop "wide: compare total order"
      (QCheck.pair rat_gen_wide rat_gen_wide)
      (fun (a, b) ->
        let c = Rat.compare a b in
        (c = 0) = Rat.equal a b
        && (c < 0) = Rat.lt a b
        && (c > 0) = Rat.gt a b
        && Rat.compare b a = -c);
    prop "wide: compare antisymmetric with midpoint"
      (QCheck.pair rat_gen_wide rat_gen_wide)
      (fun (a, b) ->
        QCheck.assume (not (Rat.equal a b));
        let lo = Rat.min a b and hi = Rat.max a b in
        let m = Rat.midpoint lo hi in
        Rat.lt lo m && Rat.lt m hi);
    prop "wide: sub then add roundtrips"
      (QCheck.pair rat_gen_wide rat_gen_wide)
      (fun (a, b) -> Rat.equal a (Rat.add (Rat.sub a b) b));
    prop "wide: hash respects equality"
      (QCheck.pair rat_gen_wide rat_gen_wide)
      (fun (a, b) ->
        let s = Rat.sub (Rat.add a b) b in
        Rat.equal a s && Rat.hash a = Rat.hash s);
    prop "wide: mul div roundtrips"
      (QCheck.pair rat_gen_wide rat_gen_wide)
      (fun (a, b) ->
        QCheck.assume (not (Rat.equal b Rat.zero));
        Rat.equal a (Rat.div (Rat.mul a b) b));
  ]

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparison" `Quick test_compare;
          Alcotest.test_case "midpoint" `Quick test_midpoint;
          Alcotest.test_case "succ/is_integer" `Quick test_succ_int;
          Alcotest.test_case "pretty-printing" `Quick test_pp;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ( "overflow-regression",
        [
          Alcotest.test_case "deep midpoint chain" `Quick
            test_deep_midpoint_chain;
          Alcotest.test_case "deep succ chain" `Quick test_deep_succ_chain;
          Alcotest.test_case "deep thirds chain" `Quick test_deep_thirds_chain;
          Alcotest.test_case "small/big boundary" `Quick
            test_big_small_boundary;
        ] );
      ( "bignat",
        [
          Alcotest.test_case "native oracle" `Quick test_bignat_small_oracle;
          Alcotest.test_case "large values" `Quick test_bignat_large;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest props);
    ]
