(* The load generator's honesty properties (docs/SERVICE.md "Load
   generation methodology"):

   - the arrival schedule is a pure function of the seed, so a rerun
     offers byte-identical load;
   - latency is anchored to the *intended* start, so a stalled server
     cannot hide its stall behind the generator's own backpressure
     (the coordinated-omission correction, demonstrated on a
     synthetic stall where the naive send-anchored numbers look
     fine and the CO-corrected ones do not);
   - quantiles are exact nearest-rank order statistics;
   - the per-class accounting invariant sent = ok + shed + busy +
     errors holds against a real daemon over the wire. *)

open Service

(* --------------------------------------------------------------- *)
(* Arrival schedule *)

let test_schedule_deterministic () =
  let gen () =
    Loadgen.Schedule.gen ~seed:42 ~arrivals:Loadgen.Poisson ~rate_hz:500.0
      ~n:200
  in
  Alcotest.(check bool) "same seed, same schedule" true (gen () = gen ());
  let other =
    Loadgen.Schedule.gen ~seed:43 ~arrivals:Loadgen.Poisson ~rate_hz:500.0
      ~n:200
  in
  Alcotest.(check bool) "different seed, different schedule" false
    (gen () = other)

let test_schedule_rate_and_shape () =
  let n = 5000 in
  let rate = 1000.0 in
  let sched =
    Loadgen.Schedule.gen ~seed:7 ~arrivals:Loadgen.Poisson ~rate_hz:rate ~n
  in
  Alcotest.(check int) "schedule length" n (Array.length sched);
  let nondecreasing = ref true in
  for i = 1 to n - 1 do
    if sched.(i) < sched.(i - 1) then nondecreasing := false
  done;
  Alcotest.(check bool) "offsets nondecreasing" true !nondecreasing;
  (* mean interarrival over many samples converges on 1/rate *)
  let span_s = float_of_int sched.(n - 1) /. 1e9 in
  let empirical_rate = float_of_int (n - 1) /. span_s in
  Alcotest.(check bool)
    (Printf.sprintf "poisson empirical rate %.0f within 10%% of %.0f"
       empirical_rate rate)
    true
    (Float.abs (empirical_rate -. rate) /. rate < 0.10);
  (* uniform arrivals are a metronome: exact fixed spacing *)
  let u =
    Loadgen.Schedule.gen ~seed:7 ~arrivals:Loadgen.Uniform ~rate_hz:1000.0
      ~n:10
  in
  let period = u.(1) - u.(0) in
  Alcotest.(check bool) "uniform spacing is constant" true
    (Array.for_all
       (fun i -> i < 1 || u.(i) - u.(i - 1) = period)
       (Array.init 10 Fun.id));
  Alcotest.(check bool) "uniform period is 1/rate" true
    (abs (period - 1_000_000) <= 1)

let test_schedule_rejects_bad_rate () =
  Alcotest.(check bool) "non-positive rate rejected" true
    (try
       ignore
         (Loadgen.Schedule.gen ~seed:1 ~arrivals:Loadgen.Uniform ~rate_hz:0.0
            ~n:1);
       false
     with Invalid_argument _ -> true)

(* --------------------------------------------------------------- *)
(* Coordinated omission *)

(* A server that stalls for 1 s: requests intended during the stall
   complete only when it ends.  The CO-corrected latency (completion -
   intended) sees the stall in its tail; the naive latency (completion
   - actual send) of a generator that politely waited sees almost
   nothing.  This is the whole point of open-loop anchoring. *)
let test_co_correction_on_synthetic_stall () =
  let rate = 1000.0 in
  let n = 2000 in
  let sched =
    Loadgen.Schedule.gen ~seed:3 ~arrivals:Loadgen.Uniform ~rate_hz:rate ~n
  in
  let stall_start_ns = 500_000_000 in
  let stall_ns = 1_000_000_000 in
  let stall_end_ns = stall_start_ns + stall_ns in
  let service_ns = 100_000 in
  (* the generator has one connection: during the stall it cannot send,
     so stalled requests go out back-to-back when the server wakes *)
  let co = Array.make n 0 in
  let naive = Array.make n 0 in
  let backlog = ref 0 in
  for i = 0 to n - 1 do
    let intended = sched.(i) in
    let send, completion =
      if intended < stall_start_ns then (intended, intended + service_ns)
      else if intended < stall_end_ns then begin
        (* sent when the server wakes, drained in order *)
        let s = stall_end_ns + (!backlog * service_ns) in
        incr backlog;
        (s, s + service_ns)
      end
      else (intended, intended + service_ns)
    in
    co.(i) <- Loadgen.Schedule.co_latency ~intended_ns:intended
        ~completion_ns:completion;
    naive.(i) <- completion - send
  done;
  let q_co = Loadgen.Quantiles.of_samples co in
  let q_naive = Loadgen.Quantiles.of_samples naive in
  (* half the measured second is inside the stall: the CO p99 must be
     a large fraction of the stall, while the naive p99 stays within a
     few service times *)
  Alcotest.(check bool)
    (Printf.sprintf "CO p99 %.0fms sees the 1000ms stall"
       (float_of_int q_co.Loadgen.Quantiles.p99_ns /. 1e6))
    true
    (q_co.Loadgen.Quantiles.p99_ns > stall_ns / 2);
  Alcotest.(check bool)
    (Printf.sprintf "naive p99 %.3fms hides it"
       (float_of_int q_naive.Loadgen.Quantiles.p99_ns /. 1e6))
    true
    (q_naive.Loadgen.Quantiles.p99_ns < 10 * service_ns);
  Alcotest.(check bool) "naive max also blind to the stall" true
    (q_naive.Loadgen.Quantiles.max_ns < stall_ns / 10)

(* --------------------------------------------------------------- *)
(* Quantiles *)

let test_quantiles_exact () =
  (* nearest rank on a known array: 1..100, pN = N *)
  let samples = Array.init 100 (fun i -> i + 1) in
  let q = Loadgen.Quantiles.of_samples samples in
  Alcotest.(check int) "n" 100 q.Loadgen.Quantiles.n;
  Alcotest.(check int) "p50" 50 q.Loadgen.Quantiles.p50_ns;
  Alcotest.(check int) "p90" 90 q.Loadgen.Quantiles.p90_ns;
  Alcotest.(check int) "p99" 99 q.Loadgen.Quantiles.p99_ns;
  Alcotest.(check int) "p99.9 rounds up to the max" 100
    q.Loadgen.Quantiles.p999_ns;
  Alcotest.(check int) "max" 100 q.Loadgen.Quantiles.max_ns;
  Alcotest.(check (float 1e-9)) "mean" 50.5 q.Loadgen.Quantiles.mean_ns;
  (* of_samples must not mutate the caller's array *)
  let unsorted = [| 5; 1; 3 |] in
  ignore (Loadgen.Quantiles.of_samples unsorted);
  Alcotest.(check bool) "caller's array untouched" true
    (unsorted = [| 5; 1; 3 |]);
  let z = Loadgen.Quantiles.of_samples [||] in
  Alcotest.(check int) "empty is zero" 0 z.Loadgen.Quantiles.n

let test_request_mix_deterministic () =
  let k1, w1 = Loadgen.request_of ~seed:9 ~high_pct:50 17 in
  let k2, w2 = Loadgen.request_of ~seed:9 ~high_pct:50 17 in
  Alcotest.(check bool) "request k is a pure function of (seed, k)" true
    (k1 = k2 && w1 = w2);
  (* the mix respects high_pct over a window *)
  let highs = ref 0 in
  for i = 0 to 999 do
    match Loadgen.request_of ~seed:9 ~high_pct:90 i with
    | Loadgen.High, _ -> incr highs
    | Loadgen.Normal, _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "~90%% High (got %d/1000)" !highs)
    true
    (!highs > 850 && !highs < 950)

(* --------------------------------------------------------------- *)
(* Accounting against a live daemon *)

let with_daemon f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-test-lg-%d.sock" (Unix.getpid ()))
  in
  let m = Mutex.create () in
  let c = Condition.create () in
  let ready = ref false in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        server_result :=
          Server.run
            ~on_ready:(fun () ->
              Mutex.lock m;
              ready := true;
              Condition.signal c;
              Mutex.unlock m)
            { (Server.default ~socket) with capacity = 16; quiet = true })
      ()
  in
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Fun.protect
    ~finally:(fun () ->
      (match Client.shutdown ~socket with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("shutdown: " ^ e));
      Thread.join server;
      match !server_result with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("server exit: " ^ e))
    (fun () -> f socket)

let check_class name (c : Loadgen.class_stats) =
  Alcotest.(check int)
    (name ^ ": sent = ok + shed + busy + errors")
    c.Loadgen.sent
    (c.Loadgen.ok + c.Loadgen.shed + c.Loadgen.busy + c.Loadgen.errors);
  Alcotest.(check bool) (name ^ ": cached <= ok") true
    (c.Loadgen.cached <= c.Loadgen.ok);
  Alcotest.(check int)
    (name ^ ": latency samples = ok answers")
    c.Loadgen.ok c.Loadgen.latency.Loadgen.Quantiles.n

let test_closed_loop_accounting () =
  with_daemon (fun socket ->
      let cfg =
        {
          (Loadgen.default ~socket) with
          clients = 4;
          warmup_s = 0.2;
          duration_s = 0.8;
        }
      in
      match Loadgen.run cfg with
      | Error e -> Alcotest.fail e
      | Ok r ->
          check_class "high" r.Loadgen.high;
          check_class "normal" r.Loadgen.normal;
          check_class "all" r.Loadgen.all;
          Alcotest.(check int) "classes partition all: sent"
            r.Loadgen.all.Loadgen.sent
            (r.Loadgen.high.Loadgen.sent + r.Loadgen.normal.Loadgen.sent);
          Alcotest.(check int) "classes partition all: ok"
            r.Loadgen.all.Loadgen.ok
            (r.Loadgen.high.Loadgen.ok + r.Loadgen.normal.Loadgen.ok);
          Alcotest.(check int) "no transport errors against a idle daemon" 0
            r.Loadgen.transport_errors;
          Alcotest.(check bool) "work flowed" true
            (r.Loadgen.all.Loadgen.ok > 0);
          Alcotest.(check bool) "closed loop never falls behind a schedule"
            true
            (r.Loadgen.late_sends = 0))

let test_open_loop_accounting () =
  with_daemon (fun socket ->
      let cfg =
        {
          (Loadgen.default ~socket) with
          clients = 4;
          warmup_s = 0.2;
          duration_s = 0.8;
          mode =
            Loadgen.Open { rate_hz = 200.0; arrivals = Loadgen.Poisson };
        }
      in
      match Loadgen.run cfg with
      | Error e -> Alcotest.fail e
      | Ok r ->
          check_class "all" r.Loadgen.all;
          Alcotest.(check int) "no transport errors" 0
            r.Loadgen.transport_errors;
          Alcotest.(check bool) "offered ~200/s for 0.8s, sent in range"
            true
            (r.Loadgen.all.Loadgen.sent > 80
            && r.Loadgen.all.Loadgen.sent < 320))

let test_unreachable_daemon_fails_fast () =
  let cfg = Loadgen.default ~socket:"/nonexistent/psopt-lg.sock" in
  match Loadgen.run cfg with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error against a missing socket"

let () =
  Alcotest.run "loadgen"
    [
      ( "schedule",
        [
          Alcotest.test_case "pure function of the seed" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "rate and shape" `Quick
            test_schedule_rate_and_shape;
          Alcotest.test_case "rejects non-positive rates" `Quick
            test_schedule_rejects_bad_rate;
        ] );
      ( "coordinated omission",
        [
          Alcotest.test_case "intended-start anchoring sees a stall" `Quick
            test_co_correction_on_synthetic_stall;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "exact nearest-rank order statistics" `Quick
            test_quantiles_exact;
          Alcotest.test_case "request mix deterministic + proportioned" `Quick
            test_request_mix_deterministic;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "closed loop vs a live daemon" `Quick
            test_closed_loop_accounting;
          Alcotest.test_case "open loop vs a live daemon" `Quick
            test_open_loop_accounting;
          Alcotest.test_case "unreachable daemon fails fast" `Quick
            test_unreachable_daemon_fails_fast;
        ] );
    ]
