(* The domain-parallel engine's determinism contract (docs/PARALLEL.md):
   [Enum.behaviors] returns the same traceset and the same completeness
   at every pool width.

   Strict equality is checked for the deterministic truncation classes
   (step budget, injected faults) over a seeded random-program corpus,
   both disciplines.  The global budgets (deadline, node budget) are
   scheduling-dependent, so for them only soundness is checked: the
   verdict is Truncated and the completed outcomes are a subset of the
   exhaustive set. *)

let sorted l = List.sort compare l

let outs_of (o : Explore.Enum.outcome) =
  Explore.Traceset.done_outs o.Explore.Enum.traces
  |> List.map sorted |> List.sort_uniq compare

(* Force oversubscription: the point of this suite is to exercise the
   multi-domain engine (stealing, publication, merging) even when the
   host has a single core and the production policy would clamp the
   width to 1. *)
let at_j j config =
  { config with Explore.Config.domains = j; oversubscribe = j > 1 }

let run ~j ?(config = Explore.Config.default) disc prog =
  Explore.Enum.behaviors_exn ~config:(at_j j config) disc prog

let pp_comp = Explore.Enum.pp_completeness

(* 1. Strict equivalence, >= 100 seeds, both disciplines, under hash
   faults (even seeds) and a tight step budget (the two deterministic
   truncation classes). *)
let test_equivalence_seeds () =
  for seed = 0 to 107 do
    let prog = Explore.Stress.generate ~seed in
    let config =
      {
        Explore.Config.default with
        Explore.Config.max_steps = 48;
        fault =
          (if seed mod 2 = 0 then
             Some
               { Explore.Config.fault_seed = seed; fault_rate = 0.03 }
           else None);
      }
    in
    List.iter
      (fun disc ->
        let o1 = run ~j:1 ~config disc prog in
        List.iter
          (fun j ->
            let oj = run ~j ~config disc prog in
            let name =
              Format.asprintf "seed %d %a j=%d" seed
                Explore.Enum.pp_discipline disc j
            in
            Alcotest.(check bool)
              (name ^ ": traceset equal")
              true
              (Explore.Traceset.equal o1.Explore.Enum.traces
                 oj.Explore.Enum.traces);
            Alcotest.(check string)
              (name ^ ": completeness equal")
              (Format.asprintf "%a" pp_comp o1.Explore.Enum.completeness)
              (Format.asprintf "%a" pp_comp oj.Explore.Enum.completeness))
          [ 2; 4 ])
      [ Explore.Enum.Interleaving; Explore.Enum.Non_preemptive ]
  done

(* 2. The corpus programs with their real configs (promises on, no
   truncation): exhaustive at every width, identical behaviour sets. *)
let test_equivalence_corpus () =
  List.iter
    (fun (t : Litmus.t) ->
      let o1 = run ~j:1 Explore.Enum.Interleaving t.Litmus.prog in
      let o4 = run ~j:4 Explore.Enum.Interleaving t.Litmus.prog in
      Alcotest.(check bool)
        (t.Litmus.name ^ ": traceset equal at j=4")
        true
        (Explore.Traceset.equal o1.Explore.Enum.traces
           o4.Explore.Enum.traces);
      Alcotest.(check bool)
        (t.Litmus.name ^ ": exact at j=4")
        o1.Explore.Enum.exact o4.Explore.Enum.exact)
    Litmus.all

(* 3. Scheduling-dependent budgets: soundness only.  Parallel runs
   under a deadline or node budget must report Truncated and may only
   lose behaviours relative to the exhaustive set. *)
let test_budget_soundness () =
  let exhaustive_outs prog = outs_of (run ~j:1 Explore.Enum.Interleaving prog) in
  let check_sound name prog config =
    let o = run ~j:4 ~config Explore.Enum.Interleaving prog in
    (match o.Explore.Enum.completeness with
    | Explore.Enum.Truncated _ -> ()
    | Explore.Enum.Exhaustive ->
        Alcotest.failf "%s: tight budget not reported as truncated" name);
    let full = exhaustive_outs prog in
    List.iter
      (fun out ->
        Alcotest.(check bool)
          (name ^ ": completed outcome in exhaustive set")
          true (List.mem out full))
      (outs_of o)
  in
  List.iter
    (fun seed ->
      let prog = Explore.Stress.generate ~seed in
      check_sound
        (Printf.sprintf "seed %d max_nodes" seed)
        prog
        { Explore.Config.default with Explore.Config.max_nodes = Some 30 };
      check_sound
        (Printf.sprintf "seed %d deadline" seed)
        prog
        {
          Explore.Config.default with
          Explore.Config.deadline_ms = Some 0;
          max_steps = 100_000;
        })
    [ 1; 2; 3; 4; 5 ]

(* 4. Exact partition of the certification counters: every consistency
   query is counted exactly once as a cache hit, a run, a trivial
   accept or an injected fault — at every width, with and without
   faults.  (PR 3 fixed a double count where a fault firing under a
   warm cache was also booked as a cache hit.) *)
let test_cert_accounting () =
  let check name (st : Explore.Stats.t) =
    let ( ! ) = Atomic.get in
    Alcotest.(check int)
      (name ^ ": cert_checks = hits + runs + trivial + faults")
      !(st.Explore.Stats.cert_checks)
      (!(st.Explore.Stats.cert_cache_hits)
      + !(st.Explore.Stats.cert_runs)
      + !(st.Explore.Stats.cert_trivial)
      + !(st.Explore.Stats.cert_faults));
    Alcotest.(check bool)
      (name ^ ": cert faults never exceed injected faults")
      true
      (!(st.Explore.Stats.cert_faults) <= !(st.Explore.Stats.faults_injected))
  in
  List.iter
    (fun (name, fault) ->
      let config =
        { Explore.Config.default with Explore.Config.fault } in
      List.iter
        (fun j ->
          let o = run ~j ~config Explore.Enum.Interleaving Litmus.lb.Litmus.prog in
          check
            (Printf.sprintf "lb %s j=%d" name j)
            o.Explore.Enum.stats;
          List.iter
            (fun seed ->
              let o =
                run ~j ~config Explore.Enum.Interleaving
                  (Explore.Stress.generate ~seed)
              in
              check
                (Printf.sprintf "seed %d %s j=%d" seed name j)
                o.Explore.Enum.stats)
            [ 11; 12; 13 ])
        [ 1; 4 ])
    [
      ("no-fault", None);
      ( "fault",
        Some { Explore.Config.fault_seed = 7; fault_rate = 0.05 } );
    ]

(* 5. The stats report the pool width actually used and the machine's
   recommendation (satellite: psopt explore surfaces both). *)
let test_domain_reporting () =
  let used j =
    let o = run ~j Explore.Enum.Interleaving Litmus.sb.Litmus.prog in
    Atomic.get o.Explore.Enum.stats.Explore.Stats.domains_used
  in
  Alcotest.(check int) "j=1 reports 1 domain" 1 (used 1);
  Alcotest.(check int) "j=4 reports 4 domains" 4 (used 4);
  Alcotest.(check int)
    "j beyond the cap is clamped" Explore.Pool.domain_cap
    (used (Explore.Pool.domain_cap + 3));
  let o = run ~j:2 Explore.Enum.Interleaving Litmus.sb.Litmus.prog in
  Alcotest.(check bool)
    "recommended >= 1" true
    (Atomic.get o.Explore.Enum.stats.Explore.Stats.domains_recommended >= 1)

(* 5b. Skew-heavy workloads: one huge subtree (a long straight-line
   thread whose padding makes its state chain deep) next to several
   tiny single-store writers.  This is the adversarial shape for
   work-stealing — the pre-planned frontier of the old engine parked
   every domain behind the one big task — and the determinism contract
   must hold at every width anyway. *)
let skew ~pad ~writers =
  let h1 = pad / 2 in
  let h2 = pad - h1 in
  let open Lang.Build in
  let padding n = List.init n (fun _ -> assign "a" (r "a" + i 1)) in
  let wname k = Printf.sprintf "w%d" k in
  program ~atomics:[ "x" ]
    (proc "big"
       [
         blk "L0"
           ([ assign "a" (i 0) ]
           @ padding h1
           @ [ load "r1" "x" ~mode:Lang.Modes.Rlx ]
           @ padding h2
           @ [
               load "r2" "x" ~mode:Lang.Modes.Rlx;
               print (r "r1");
               print (r "r2");
             ])
           ret;
       ]
    :: List.init writers (fun k ->
           proc (wname k)
             [
               blk "L0"
                 [ store "x" ~mode:Lang.Modes.WRlx (i (Stdlib.( + ) k 1)) ]
                 ret;
             ]))
    ~threads:("big" :: List.init writers wname)

let test_skew_equivalence () =
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun disc ->
          let o1 = run ~j:1 disc prog in
          List.iter
            (fun j ->
              let oj = run ~j disc prog in
              let label =
                Format.asprintf "%s %a j=%d" name Explore.Enum.pp_discipline
                  disc j
              in
              Alcotest.(check bool)
                (label ^ ": traceset equal")
                true
                (Explore.Traceset.equal o1.Explore.Enum.traces
                   oj.Explore.Enum.traces);
              Alcotest.(check string)
                (label ^ ": completeness equal")
                (Format.asprintf "%a" pp_comp o1.Explore.Enum.completeness)
                (Format.asprintf "%a" pp_comp oj.Explore.Enum.completeness))
            [ 2; 4 ])
        [ Explore.Enum.Interleaving; Explore.Enum.Non_preemptive ])
    [
      ("skew 12/2", skew ~pad:12 ~writers:2);
      ("skew 24/2", skew ~pad:24 ~writers:2);
    ]

(* 6. The pool itself: order preservation, error propagation, shards. *)
let test_pool () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "map preserves input order at j=4"
    (List.map (fun x -> x * x) xs)
    (Explore.Pool.map ~j:4 (fun x -> x * x) xs);
  (match
     Explore.Pool.map ~j:4
       (fun x -> if x = 41 then failwith "boom" else x)
       xs
   with
  | exception Failure msg -> Alcotest.(check string) "first error wins" "boom" msg
  | _ -> Alcotest.fail "expected the worker exception to propagate");
  Alcotest.(check (list int))
    "j=1 degenerates to List.map" (List.map succ xs)
    (Explore.Pool.map ~j:1 succ xs)

(* 7. Pool edge cases (service PR): empty input, every task raising,
   nested pools, and two independent pools driven concurrently from
   separate domains — the daemon schedules client requests onto the
   pool, so these shapes now occur in production. *)
let test_pool_edges () =
  Alcotest.(check (list int))
    "zero tasks at j=4 yields []" []
    (Explore.Pool.map ~j:4 (fun x -> x) []);
  Alcotest.(check (list int))
    "zero tasks at j=1 yields []" []
    (Explore.Pool.map ~j:1 (fun x -> x) []);
  (* every task raises: the lowest task index must win, at any width *)
  List.iter
    (fun j ->
      match
        Explore.Pool.map ~j
          (fun x -> failwith (Printf.sprintf "task-%d" x))
          (List.init 20 Fun.id)
      with
      | exception Failure msg ->
          Alcotest.(check string)
            (Printf.sprintf "all raise at j=%d: lowest index wins" j)
            "task-0" msg
      | _ -> Alcotest.fail "expected the exception to propagate")
    [ 1; 4 ];
  (* a task that itself runs a pool: from a j=1 caller and a j=4 caller *)
  let inner x = Explore.Pool.map ~j:2 (fun y -> (x * 10) + y) [ 0; 1; 2 ] in
  let expect = List.map inner [ 0; 1; 2; 3 ] in
  Alcotest.(check (list (list int)))
    "nested pool from j=1" expect
    (Explore.Pool.map ~j:1 inner [ 0; 1; 2; 3 ]);
  Alcotest.(check (list (list int)))
    "nested pool from j=4" expect
    (Explore.Pool.map ~j:4 inner [ 0; 1; 2; 3 ]);
  (* two independent pool runs from two domains at once *)
  let xs = List.init 50 Fun.id in
  let spawn () = Domain.spawn (fun () -> Explore.Pool.map ~j:3 succ xs) in
  let d1 = spawn () and d2 = spawn () in
  let r1 = Domain.join d1 and r2 = Domain.join d2 in
  Alcotest.(check (list int)) "concurrent run 1" (List.map succ xs) r1;
  Alcotest.(check (list int)) "concurrent run 2" (List.map succ xs) r2

(* 8. Worker lifecycle (the domain-leak regression): every worker that
   ran [init] must run [finish] and be joined, no matter what raises.
   Before the fix, a coordinator-side exception propagated before the
   join loop, abandoning the spawned domains (a leak that eventually
   exhausts the runtime's domain slots).  Observable contract: after
   the call returns (exceptionally), all [init]ed workers have
   [finish]ed, the error is the deterministic one, and the pool is
   immediately reusable. *)
let test_worker_lifecycle () =
  let tasks = List.init 16 Fun.id in
  (* finish raises on every worker, including the coordinator *)
  let started = Atomic.make 0 and finished = Atomic.make 0 in
  (match
     Explore.Pool.map_with ~j:4
       ~init:(fun () -> Atomic.incr started)
       ~finish:(fun () ->
         Atomic.incr finished;
         failwith "finish-boom")
       (fun () x -> x)
       tasks
   with
  | exception Failure msg ->
      Alcotest.(check string) "finish failure propagates" "finish-boom" msg
  | _ -> Alcotest.fail "expected the finish exception to propagate");
  Alcotest.(check int)
    "every init'd worker ran finish (finish raising)"
    (Atomic.get started) (Atomic.get finished);
  (* a raising task: lowest index wins, and finish still runs everywhere *)
  let started = Atomic.make 0 and finished = Atomic.make 0 in
  (match
     Explore.Pool.map_with ~j:4
       ~init:(fun () -> Atomic.incr started)
       ~finish:(fun () -> Atomic.incr finished)
       (fun () x ->
         if x >= 5 then failwith (Printf.sprintf "task-%d" x) else x)
       tasks
   with
  | exception Failure msg ->
      Alcotest.(check string) "lowest task index wins" "task-5" msg
  | _ -> Alcotest.fail "expected the task exception to propagate");
  Alcotest.(check int)
    "every init'd worker ran finish (task raising)"
    (Atomic.get started) (Atomic.get finished);
  (* the pool still works after both exceptional exits (nothing is
     left wedged: deques drained, domains joined) *)
  Alcotest.(check (list int))
    "pool reusable after exceptional runs"
    (List.map succ tasks)
    (Explore.Pool.map ~j:4 succ tasks)

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "seeded corpus, faults + tight budget, j in {2,4}"
            `Slow test_equivalence_seeds;
          Alcotest.test_case "litmus corpus exact at j=4" `Quick
            test_equivalence_corpus;
          Alcotest.test_case "skew-heavy workloads, both disciplines" `Quick
            test_skew_equivalence;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "deadline/node budgets: truncated + subset"
            `Quick test_budget_soundness;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "cert counters partition exactly" `Quick
            test_cert_accounting;
          Alcotest.test_case "domain width reported in stats" `Quick
            test_domain_reporting;
        ] );
      ( "pool",
        [
          Alcotest.test_case "order, errors, clamp" `Quick test_pool;
          Alcotest.test_case "edges: empty, all-raise, nested, concurrent"
            `Quick test_pool_edges;
          Alcotest.test_case "worker lifecycle: finish + join on every exit"
            `Quick test_worker_lifecycle;
        ] );
    ]
