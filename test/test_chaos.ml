(* The chaos suite (docs/ROBUSTNESS.md): a real daemon behind the
   deterministic fault proxy, with torn frames, injected delays, byte
   corruption and mid-request disconnects.  The property under test:

     every client call converges to a correct reply or a typed error —
     never a hang, and never a silently wrong verdict (the frame
     checksum turns corruption into a reconnect-and-retry, and the
     content-addressed store makes the retry byte-identical).

   A hard watchdog turns any hang into a loud exit 99 instead of a
   stuck CI job. *)

module Proto = Service.Proto
module Config = Explore.Config

let () =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay 240.0;
         prerr_endline "test_chaos: watchdog timeout — suite hung";
         exit 99)
       ())

(* --------------------------------------------------------------- *)
(* Resilience primitives *)

let test_backoff () =
  let module B = Service.Resilience.Backoff in
  let b = B.create ~seed:42 () in
  let ds = List.init 20 (fun _ -> B.next b) in
  List.iter
    (fun d ->
      Alcotest.(check bool) "backoff within [0, cap]" true
        (d >= 0.0 && d <= 2.0))
    ds;
  Alcotest.(check int) "backoff counts its sleeps" 20 (B.count b);
  Alcotest.(check bool) "backoff totals its sleeps" true
    (abs_float (B.total_s b -. List.fold_left ( +. ) 0.0 ds) < 1e-9);
  (* same seed, same schedule: chaos runs replay *)
  let b' = B.create ~seed:42 () in
  Alcotest.(check bool) "seeded backoff is deterministic" true
    (List.for_all (fun d -> B.next b' = d) ds);
  (* reset returns to the base band but keeps the accounting *)
  B.reset b;
  let after = B.next b in
  Alcotest.(check bool) "reset shrinks the next sleep to the base band" true
    (after <= 0.06);
  Alcotest.(check int) "reset keeps the count" 21 (B.count b)

let test_breaker () =
  let module K = Service.Resilience.Breaker in
  let now = ref 0.0 in
  let k = K.create ~failure_threshold:3 ~cooldown_s:1.0 ~now:(fun () -> !now) () in
  Alcotest.(check bool) "fresh breaker allows" true (K.allow k);
  K.failure k;
  K.failure k;
  Alcotest.(check bool) "below threshold still allows" true (K.allow k);
  K.failure k;
  Alcotest.(check bool) "threshold trips it open" false (K.allow k);
  Alcotest.(check int) "one trip counted" 1 (K.trips k);
  now := 0.5;
  Alcotest.(check bool) "still open inside the cooldown" false (K.allow k);
  now := 1.1;
  Alcotest.(check bool) "past cooldown admits one probe" true (K.allow k);
  K.failure k;
  Alcotest.(check bool) "failed probe re-opens" false (K.allow k);
  Alcotest.(check int) "re-open is a second trip" 2 (K.trips k);
  now := 2.5;
  Alcotest.(check bool) "past cooldown again" true (K.allow k);
  K.success k;
  Alcotest.(check bool) "successful probe closes" true (K.allow k);
  K.failure k;
  Alcotest.(check bool) "closed tolerates a failure again" true (K.allow k)

(* --------------------------------------------------------------- *)
(* Daemon + proxy plumbing *)

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "psopt-chaos-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let fresh_socket =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-chaos-%s-%d-%d.sock" tag (Unix.getpid ()) !counter)

(* Start a daemon, return its socket and a join-and-check closure. *)
let start_daemon cfg =
  let m = Mutex.create () in
  let c = Condition.create () in
  let ready = ref false in
  let server_result = ref (Ok ()) in
  let server =
    Thread.create
      (fun () ->
        server_result :=
          Service.Server.run
            ~on_ready:(fun () ->
              Mutex.lock m;
              ready := true;
              Condition.signal c;
              Mutex.unlock m)
            cfg)
      ()
  in
  Mutex.lock m;
  while not !ready do
    Condition.wait c m
  done;
  Mutex.unlock m;
  fun () ->
    Thread.join server;
    match !server_result with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("server exit: " ^ e)

let daemon_config ~socket ~store_dir =
  {
    (Service.Server.default ~socket) with
    store_dir;
    quiet = true;
    io_timeout_s = 2.0;
    idle_timeout_s = 10.0;
  }

(* The workload: a slice of the litmus corpus, small enough to keep
   the suite quick, varied enough that replies differ per item. *)
let workload =
  List.filteri (fun i _ -> i < 4) Litmus.all
  |> List.map (fun (t : Litmus.t) -> t.Litmus.name)

let work_req name = Proto.Work (Proto.Litmus name, Config.default, None)

(* Fault-free reference replies (and store warm-up) over a direct
   connection. *)
let reference ~socket =
  List.map
    (fun name ->
      match
        Service.Client.with_client ~socket (fun cl ->
            Service.Client.rpc_wait cl (work_req name))
      with
      | Ok (Ok (Proto.Reply r)) -> (name, (r.Proto.exit_code, r.Proto.output))
      | Ok (Ok _) -> Alcotest.fail (name ^ ": expected a Reply")
      | Ok (Error e) | Error e -> Alcotest.fail (name ^ ": " ^ e))
    workload

(* --------------------------------------------------------------- *)
(* The proxy as a transparent relay: no faults, byte-identical. *)

let test_calm_relay () =
  let upstream = fresh_socket "calm-up" in
  let join = start_daemon (daemon_config ~socket:upstream ~store_dir:(Some (fresh_dir ()))) in
  let listen = fresh_socket "calm-proxy" in
  let proxy =
    match Service.Chaos.start ~plan:Service.Chaos.calm ~listen ~upstream with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      Service.Chaos.stop proxy;
      (match Service.Client.shutdown ~socket:upstream with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("shutdown: " ^ e));
      join ())
    (fun () ->
      let direct = reference ~socket:upstream in
      List.iter
        (fun (name, (code, output)) ->
          match
            Service.Client.with_client ~socket:listen (fun cl ->
                Service.Client.rpc_wait cl (work_req name))
          with
          | Ok (Ok (Proto.Reply r)) ->
              Alcotest.(check int) (name ^ ": exit code through relay") code
                r.Proto.exit_code;
              Alcotest.(check string) (name ^ ": bytes through relay") output
                r.Proto.output
          | Ok (Ok _) -> Alcotest.fail (name ^ ": expected a Reply")
          | Ok (Error e) | Error e -> Alcotest.fail (name ^ ": " ^ e))
        direct;
      let c = Service.Chaos.counts proxy in
      Alcotest.(check int) "calm plan injected nothing" 0
        (c.Service.Chaos.delays + c.Service.Chaos.tears
        + c.Service.Chaos.corruptions + c.Service.Chaos.disconnects))

(* --------------------------------------------------------------- *)
(* The storm: every call through a rough proxy converges to the
   reference bytes. *)

let storm_round ~listen ~plan_seed ~rounds expected =
  ignore plan_seed;
  let retries = ref 0 in
  for _round = 1 to rounds do
    List.iter
      (fun (name, (code, output)) ->
        match
          Service.Client.with_client ~io_timeout_s:5.0 ~seed:7 ~socket:listen
            (fun cl ->
              let r =
                Service.Client.rpc_wait ~retries:300 ~deadline_s:60.0 cl
                  (work_req name)
              in
              let s = Service.Client.stats cl in
              retries := !retries + s.Service.Client.retries;
              r)
        with
        | Ok (Ok (Proto.Reply r)) ->
            (* the verdict is never silently wrong *)
            Alcotest.(check int) (name ^ ": exit code under chaos") code
              r.Proto.exit_code;
            Alcotest.(check string) (name ^ ": bytes under chaos") output
              r.Proto.output
        | Ok (Ok (Proto.Busy _ | Proto.Shed _)) ->
            (* legal terminal outcomes when the retry budget drains —
               typed backpressure, not corruption *)
            ()
        | Ok (Ok _) -> Alcotest.fail (name ^ ": unexpected response kind")
        | Ok (Error e) | Error e ->
            (* a typed transport error after exhausting retries is a
               legal terminal outcome; a hang is not (watchdog) *)
            Alcotest.(check bool) (name ^ ": error is non-empty") true
              (String.length e > 0))
      expected
  done;
  !retries

let test_storm () =
  let upstream = fresh_socket "storm-up" in
  let store_dir = fresh_dir () in
  let join =
    start_daemon (daemon_config ~socket:upstream ~store_dir:(Some store_dir))
  in
  let listen = fresh_socket "storm-proxy" in
  let plan = { Service.Chaos.rough with Service.Chaos.seed = 11 } in
  let proxy =
    match Service.Chaos.start ~plan ~listen ~upstream with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () ->
      Service.Chaos.stop proxy;
      (match Service.Client.shutdown ~socket:upstream with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("shutdown: " ^ e));
      join ())
    (fun () ->
      (* warm the store fault-free so chaos replies have a reference *)
      let expected = reference ~socket:upstream in
      let retries =
        storm_round ~listen ~plan_seed:plan.Service.Chaos.seed ~rounds:3
          expected
      in
      let c = Service.Chaos.counts proxy in
      Alcotest.(check bool) "the storm actually injected faults" true
        (c.Service.Chaos.tears + c.Service.Chaos.corruptions
         + c.Service.Chaos.disconnects
        > 0);
      (* client-side resilience did real work and is observable *)
      Alcotest.(check bool) "faults forced retries" true (retries > 0);
      (* after the storm, fault-free warm replies are byte-identical
         to the pre-storm reference: chaos corrupted nothing durable *)
      List.iter
        (fun (name, (code, output)) ->
          match
            Service.Client.with_client ~socket:upstream (fun cl ->
                Service.Client.rpc_wait cl (work_req name))
          with
          | Ok (Ok (Proto.Reply r)) ->
              Alcotest.(check bool) (name ^ ": post-storm reply cached") true
                r.Proto.cached;
              Alcotest.(check int) (name ^ ": post-storm exit code") code
                r.Proto.exit_code;
              Alcotest.(check string) (name ^ ": post-storm bytes") output
                r.Proto.output
          | Ok (Ok _) -> Alcotest.fail (name ^ ": expected a Reply")
          | Ok (Error e) | Error e -> Alcotest.fail (name ^ ": " ^ e))
        expected)

(* --------------------------------------------------------------- *)
(* Kill and restart: the daemon dies mid-conversation and comes back;
   a patient client converges through the same proxy socket. *)

let test_kill_and_restart () =
  let upstream = fresh_socket "restart-up" in
  let store_dir = fresh_dir () in
  let cfg = daemon_config ~socket:upstream ~store_dir:(Some store_dir) in
  let join1 = start_daemon cfg in
  let listen = fresh_socket "restart-proxy" in
  let proxy =
    match Service.Chaos.start ~plan:Service.Chaos.calm ~listen ~upstream with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Fun.protect
    ~finally:(fun () -> Service.Chaos.stop proxy)
    (fun () ->
      (* warm the store, then take the daemon down *)
      let expected = reference ~socket:upstream in
      (match Service.Client.shutdown ~socket:upstream with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("first shutdown: " ^ e));
      join1 ();
      (* a client starts asking while the daemon is dead *)
      let name, (code, output) = List.hd expected in
      let answer = ref None in
      let asker =
        Thread.create
          (fun () ->
            answer :=
              Some
                (Service.Client.with_client ~io_timeout_s:5.0 ~socket:listen
                   (fun cl ->
                     Service.Client.rpc_wait ~retries:300 ~deadline_s:60.0 cl
                       (work_req name))))
          ()
      in
      (* ... and the daemon comes back on the same socket and store *)
      Thread.delay 0.3;
      let join2 = start_daemon cfg in
      Thread.join asker;
      (match !answer with
      | Some (Ok (Ok (Proto.Reply r))) ->
          Alcotest.(check bool) (name ^ ": answered from the store") true
            r.Proto.cached;
          Alcotest.(check int) (name ^ ": exit code across restart") code
            r.Proto.exit_code;
          Alcotest.(check string) (name ^ ": bytes across restart") output
            r.Proto.output
      | Some (Ok (Ok _)) -> Alcotest.fail "expected a Reply across restart"
      | Some (Ok (Error e)) | Some (Error e) ->
          Alcotest.fail ("client never converged: " ^ e)
      | None -> Alcotest.fail "asker thread died");
      (match Service.Client.shutdown ~socket:upstream with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("second shutdown: " ^ e));
      join2 ())

(* --------------------------------------------------------------- *)

let () =
  Alcotest.run "chaos"
    [
      ( "resilience",
        [
          Alcotest.test_case "decorrelated-jitter backoff" `Quick test_backoff;
          Alcotest.test_case "circuit breaker state machine" `Quick
            test_breaker;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "calm plan is a transparent relay" `Quick
            test_calm_relay;
          Alcotest.test_case
            "storm converges: correct replies or typed errors" `Quick
            test_storm;
          Alcotest.test_case "daemon kill-and-restart converges" `Quick
            test_kill_and_restart;
        ] );
    ]
