(* The resilience layer: budget truncation is always surfaced (never a
   verdict over a silently partial state space), the typed error
   taxonomy replaces bare exceptions, fault injection only degrades
   verdicts, and the stress runner quarantines crashes reproducibly. *)

let config = Explore.Config.default

let done_outs_of traces =
  Explore.Traceset.done_outs traces
  |> List.map (List.sort compare)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Truncation soundness (the regression guard of the issue): a program
   whose full traceset needs more than [max_steps] must come back
   [Truncated] and force every downstream verdict to inconclusive;
   the same program with budget to spare yields the exhaustive
   verdict. *)

let test_truncation_soundness () =
  let p = Litmus.sb.Litmus.prog in
  let tight = { config with Explore.Config.max_steps = 6 } in
  let o = Explore.Enum.behaviors_exn ~config:tight Explore.Enum.Interleaving p in
  (match o.Explore.Enum.completeness with
  | Explore.Enum.Truncated reasons ->
      Alcotest.(check bool)
        "step budget among reasons" true
        (List.mem Explore.Errors.Step_budget reasons)
  | Explore.Enum.Exhaustive -> Alcotest.fail "expected Truncated");
  Alcotest.(check bool) "exact mirrors completeness" false o.Explore.Enum.exact;
  (* refinement of p against itself: trivially true, but not claimable
     on a truncated exploration *)
  let rep = Explore.Refine.check ~config:tight ~target:p ~source:p () in
  (match rep.Explore.Refine.verdict with
  | Explore.Refine.Inconclusive _ -> ()
  | v ->
      Alcotest.failf "expected Inconclusive, got %a" Explore.Refine.pp_verdict v);
  (* litmus check inherits the downgrade *)
  (match (Litmus.check ~config:tight Litmus.sb).Litmus.verdict with
  | Litmus.Inconclusive _ -> ()
  | Litmus.Pass | Litmus.Mismatch _ -> Alcotest.fail "expected Inconclusive");
  (* with a sufficient budget everything is exhaustive again *)
  let o = Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving p in
  Alcotest.(check bool)
    "exhaustive with budget" true
    (o.Explore.Enum.completeness = Explore.Enum.Exhaustive);
  let rep = Explore.Refine.check ~config ~target:p ~source:p () in
  Alcotest.(check bool)
    "refines with budget" true
    (rep.Explore.Refine.verdict = Explore.Refine.Refines);
  Alcotest.(check bool)
    "litmus passes with budget" true
    ((Litmus.check ~config Litmus.sb).Litmus.verdict = Litmus.Pass)

let test_node_budget () =
  let cfg = { config with Explore.Config.max_nodes = Some 3 } in
  let o =
    Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Interleaving
      Litmus.sb.Litmus.prog
  in
  (match o.Explore.Enum.completeness with
  | Explore.Enum.Truncated reasons ->
      Alcotest.(check bool)
        "node budget among reasons" true
        (List.mem Explore.Errors.Node_budget reasons)
  | Explore.Enum.Exhaustive -> Alcotest.fail "expected Truncated");
  Alcotest.(check bool)
    "counter incremented" true
    ((Atomic.get o.Explore.Enum.stats.Explore.Stats.node_budget_hits) > 0)

let test_deadline_budget () =
  (* A deadline of 0 ms is already past when the first wall-clock
     probe runs; the amortization means a big enough search always
     probes. *)
  let cfg =
    {
      config with
      Explore.Config.deadline_ms = Some 0;
      max_steps = 100_000;
      max_promises = 2;
    }
  in
  let o =
    Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Interleaving
      Litmus.spinlock.Litmus.prog
  in
  Alcotest.(check bool)
    "deadline tripped" true
    ((Atomic.get o.Explore.Enum.stats.Explore.Stats.deadline_hits) > 0);
  match o.Explore.Enum.completeness with
  | Explore.Enum.Truncated reasons ->
      Alcotest.(check bool)
        "deadline among reasons" true
        (List.mem Explore.Errors.Deadline reasons)
  | Explore.Enum.Exhaustive -> Alcotest.fail "expected Truncated"

(* The reason/counter correspondence (docs/OBSERVABILITY.md): a reason
   appears in [truncation_reasons] iff its counter is nonzero — in
   BOTH directions, across config variants that trip each budget and
   configs that trip none.  This pins the derivation [Stats.
   truncation_reasons] against counter renames or forgotten reasons. *)

let counter_for stats = function
  | Explore.Errors.Step_budget -> Atomic.get stats.Explore.Stats.cuts
  | Explore.Errors.Promise_budget ->
      Atomic.get stats.Explore.Stats.promise_budget_hits
  | Explore.Errors.Deadline -> Atomic.get stats.Explore.Stats.deadline_hits
  | Explore.Errors.Node_budget ->
      Atomic.get stats.Explore.Stats.node_budget_hits
  | Explore.Errors.Oom -> Atomic.get stats.Explore.Stats.oom_hits
  | Explore.Errors.Fault -> Atomic.get stats.Explore.Stats.faults_injected

let all_reasons =
  [ Explore.Errors.Step_budget; Explore.Errors.Promise_budget;
    Explore.Errors.Deadline; Explore.Errors.Node_budget;
    Explore.Errors.Oom; Explore.Errors.Fault ]

let test_reasons_match_counters () =
  let variants =
    [
      ("default", config, Litmus.sb.Litmus.prog);
      ( "max_steps=6",
        { config with Explore.Config.max_steps = 6 },
        Litmus.sb.Litmus.prog );
      ( "max_nodes=3",
        { config with Explore.Config.max_nodes = Some 3 },
        Litmus.sb.Litmus.prog );
      ( "deadline_ms=0",
        { config with Explore.Config.deadline_ms = Some 0;
          max_steps = 100_000; max_promises = 2 },
        Litmus.spinlock.Litmus.prog );
      ( "fault rate=20%",
        { config with
          Explore.Config.fault =
            Some { Explore.Config.fault_seed = 3; fault_rate = 0.2 } },
        Litmus.lb.Litmus.prog );
      ( "strict max_promises=0",
        { config with Explore.Config.max_promises = 0;
          strict_promises = true },
        Litmus.lb.Litmus.prog );
    ]
  in
  List.iter
    (fun (name, cfg, prog) ->
      let o = Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Interleaving prog in
      let stats = o.Explore.Enum.stats in
      let reasons = Explore.Stats.truncation_reasons stats in
      List.iter
        (fun r ->
          let listed = List.mem r reasons in
          let counted = counter_for stats r > 0 in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s listed iff counted" name
               (Explore.Errors.reason_to_string r))
            counted listed)
        all_reasons;
      (* and the reason list agrees with the outcome's completeness *)
      Alcotest.(check bool)
        (name ^ ": reasons empty iff exhaustive")
        (reasons = [])
        (o.Explore.Enum.completeness = Explore.Enum.Exhaustive))
    variants

let test_race_inconclusive_on_truncation () =
  let cfg = { config with Explore.Config.max_steps = 3 } in
  (* ww_sync is race-free with a full exploration; under truncation
     that claim must not survive. *)
  match Race.ww_rf ~config:cfg Litmus.ww_sync.Litmus.prog with
  | Ok (Race.Inconclusive _) -> ()
  | Ok Race.Free -> Alcotest.fail "claimed Free over a truncated walk"
  | Ok (Race.Racy _) -> Alcotest.fail "unexpected race"
  | Error e -> Alcotest.fail e

let test_verif_inconclusive_on_truncation () =
  let cfg = { config with Explore.Config.max_steps = 3 } in
  let r = Option.get (Sim.Verif.find "dce") in
  match Sim.Verif.check ~explore_config:cfg r Litmus.mp_rel_acq.Litmus.prog with
  | Sim.Verif.Inconclusive _ -> ()
  | Sim.Verif.Verified -> Alcotest.fail "Verified over a truncated state space"
  | Sim.Verif.Fail (_, why) -> Alcotest.failf "unexpected Fail: %s" why

(* ------------------------------------------------------------------ *)
(* Fault injection: under every seeded schedule, (a) completed traces
   are a subset of the fault-free run's, and (b) pipeline verdicts
   only move toward Inconclusive — never a flip to Verified, and any
   Fail under fault matches the fault-free refutation. *)

let test_fault_subset () =
  let programs =
    [ Litmus.sb; Litmus.lb; Litmus.mp_rel_acq; Litmus.coherence ]
  in
  List.iter
    (fun (t : Litmus.t) ->
      let base =
        Explore.Enum.behaviors_exn ~config Explore.Enum.Interleaving
          t.Litmus.prog
      in
      let base_outs = done_outs_of base.Explore.Enum.traces in
      for seed = 0 to 99 do
        let cfg =
          {
            config with
            Explore.Config.fault =
              Some { Explore.Config.fault_seed = seed; fault_rate = 0.05 };
          }
        in
        let o =
          Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Interleaving
            t.Litmus.prog
        in
        let outs = done_outs_of o.Explore.Enum.traces in
        List.iter
          (fun out ->
            Alcotest.(check bool)
              (Printf.sprintf "%s seed %d: faulty outcome in fault-free set"
                 t.Litmus.name seed)
              true (List.mem out base_outs))
          outs;
        (* A schedule that fired must surface as truncation. *)
        if (Atomic.get o.Explore.Enum.stats.Explore.Stats.faults_injected) > 0 then
          match o.Explore.Enum.completeness with
          | Explore.Enum.Truncated reasons ->
              Alcotest.(check bool)
                "fault among reasons" true
                (List.mem Explore.Errors.Fault reasons)
          | Explore.Enum.Exhaustive ->
              Alcotest.fail "faults fired but outcome claims Exhaustive"
      done)
    programs

let test_fault_verdict_monotone () =
  let r = Option.get (Sim.Verif.find "constprop") in
  let programs =
    [ Litmus.mp_rel_acq.Litmus.prog; Litmus.ww_sync.Litmus.prog ]
  in
  List.iter
    (fun p ->
      let base = Sim.Verif.check r p in
      for seed = 0 to 99 do
        let cfg =
          {
            config with
            Explore.Config.fault =
              Some { Explore.Config.fault_seed = seed; fault_rate = 0.02 };
          }
        in
        match (base, Sim.Verif.check ~explore_config:cfg r p) with
        | _, Sim.Verif.Inconclusive _ -> ()
        | Sim.Verif.Verified, Sim.Verif.Verified -> ()
        | Sim.Verif.Fail _, Sim.Verif.Fail _ -> ()
        | Sim.Verif.Verified, Sim.Verif.Fail (_, why) ->
            (* Faults only remove behaviours, so a verified pipeline
               can degrade to Inconclusive but never conjure a
               refutation from thin air... except a racy state is
               always genuinely reachable, and faults cannot create
               states.  So this is a genuine flip: fail loudly. *)
            Alcotest.failf "seed %d: Verified flipped to Fail: %s" seed why
        | Sim.Verif.Fail _, Sim.Verif.Verified ->
            Alcotest.failf "seed %d: Fail flipped to Verified" seed
        | Sim.Verif.Inconclusive _, v ->
            Alcotest.failf "fault-free run inconclusive?! %a"
              Sim.Verif.pp_verdict v
      done)
    programs

(* ------------------------------------------------------------------ *)
(* The typed error taxonomy. *)

let test_parse_positions () =
  (match Lang.Parse.program_of_string "threads t1;\nproc t1 entry L {\n  L: x.na := @;\n}" with
  | exception Lang.Parse.Error e ->
      Alcotest.(check int) "line" 3 e.Lang.Parse.line;
      Alcotest.(check bool) "column points into the line" true
        (e.Lang.Parse.col > 1)
  | _ -> Alcotest.fail "expected a parse error");
  match Lang.Parse.program_of_string "threads t1;\nproc t1 entry L {\n  L: jmp\n}" with
  | exception Lang.Parse.Error e ->
      Alcotest.(check bool) "message mentions the offending token" true
        (let m = Lang.Parse.error_message e in
         String.length m > 0 && e.Lang.Parse.line >= 3)
  | _ -> Alcotest.fail "expected a parse error"

let test_wf_exception () =
  let open Lang.Ast in
  let p =
    program
      ~code:[ ("t1", codeheap ~entry:"L" [ ("L", block [] Return) ]) ]
      [ "t1"; "missing" ]
  in
  match Lang.Wf.check_exn p with
  | exception Lang.Wf.Ill_formed (_ :: _) -> ()
  | exception Lang.Wf.Ill_formed [] -> Alcotest.fail "empty error list"
  | _ -> Alcotest.fail "expected Ill_formed"

let test_error_classification () =
  let open Explore.Errors in
  Alcotest.(check bool)
    "invalid_arg classifies as Ill_formed" true
    (match of_exn (Invalid_argument "x") with Ill_formed _ -> true | _ -> false);
  Alcotest.(check bool)
    "stack overflow is Internal" true
    (match of_exn Stack_overflow with Internal _ -> true | _ -> false);
  Alcotest.(check bool)
    "guard catches typed errors" true
    (match guard (fun () -> raise (Error (Budget_exhausted "b"))) with
    | Error (Budget_exhausted _) -> true
    | _ -> false);
  Alcotest.(check bool)
    "guard passes values through" true
    (guard (fun () -> 41 + 1) = Ok 42)

let test_behaviors_exn_typed () =
  let open Lang.Ast in
  (* thread function never declared: Machine.init fails *)
  let p =
    {
      (program
         ~code:[ ("t1", codeheap ~entry:"L" [ ("L", block [] Return) ]) ]
         [ "t1" ])
      with
      threads = [ "ghost" ];
    }
  in
  match Explore.Enum.behaviors_exn Explore.Enum.Interleaving p with
  | exception Explore.Errors.Error (Explore.Errors.Ill_formed _) -> ()
  | _ -> Alcotest.fail "expected a typed Ill_formed error"

(* ------------------------------------------------------------------ *)
(* Stress runner: generation is deterministic, verdict accounting
   adds up, crashes are quarantined with a round-trippable artifact. *)

let test_generator_deterministic () =
  for seed = 0 to 20 do
    let p1 = Explore.Stress.generate ~seed in
    let p2 = Explore.Stress.generate ~seed in
    Alcotest.(check string)
      (Printf.sprintf "seed %d reproducible" seed)
      (Lang.Pp.program_to_string p1)
      (Lang.Pp.program_to_string p2);
    Alcotest.(check bool)
      "generated programs are well-formed" true
      (Lang.Wf.check p1 = Ok ())
  done

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let test_stress_accounting () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "psopt-stress-ok" in
  rm_rf dir;
  let r = Option.get (Sim.Verif.find "dce") in
  let check ~config p =
    match Sim.Verif.check ~explore_config:config r p with
    | Sim.Verif.Verified -> `Verified
    | Sim.Verif.Fail (_, why) -> `Refuted why
    | Sim.Verif.Inconclusive why -> `Inconclusive why
  in
  let s =
    Explore.Stress.run ~quarantine_dir:dir ~cases:8 ~seed:0 ~deadline_ms:5000
      ~check ()
  in
  Alcotest.(check int) "all cases accounted" 8
    (s.Explore.Stress.verified + s.Explore.Stress.refuted
    + s.Explore.Stress.inconclusive + s.Explore.Stress.quarantined);
  Alcotest.(check int) "no quarantines" 0 s.Explore.Stress.quarantined;
  Alcotest.(check bool)
    "inflight file cleaned up" false
    (Sys.file_exists (Filename.concat dir "inflight.sexp"));
  rm_rf dir

let test_stress_quarantine () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "psopt-stress-crash"
  in
  rm_rf dir;
  let ticks = ref 0 in
  let check ~config:_ _ =
    incr ticks;
    if !ticks = 2 then failwith "injected checker bug" else `Verified
  in
  let s =
    Explore.Stress.run ~retries:0 ~quarantine_dir:dir ~cases:3 ~seed:7
      ~deadline_ms:1000 ~check ()
  in
  Alcotest.(check int) "one quarantine" 1 s.Explore.Stress.quarantined;
  Alcotest.(check int) "others verified" 2 s.Explore.Stress.verified;
  (* the artifact exists and round-trips to the generated program *)
  let sexps =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sexp")
    |> List.filter (fun f -> f <> "inflight.sexp")
  in
  (match sexps with
  | [ f ] -> (
      let ic = open_in_bin (Filename.concat dir f) in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Lang.Sexp.program_of_string contents with
      | Ok p ->
          let expected =
            Explore.Stress.generate ~seed:(7 + 1) (* second case *)
          in
          Alcotest.(check string)
            "artifact round-trips to the generated program"
            (Lang.Pp.program_to_string expected)
            (Lang.Pp.program_to_string p)
      | Error e -> Alcotest.failf "artifact does not parse: %s" e)
  | fs -> Alcotest.failf "expected exactly one artifact, got %d" (List.length fs));
  rm_rf dir

let test_stress_retry_escalation () =
  (* A checker inconclusive at the base budget and verified once the
     budget doubles: the retry loop must find the second attempt. *)
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) "psopt-stress-retry"
  in
  rm_rf dir;
  let check ~config p =
    ignore p;
    if config.Explore.Config.max_steps > Explore.Config.default.Explore.Config.max_steps
    then `Verified
    else `Inconclusive "needs a bigger budget"
  in
  let s =
    Explore.Stress.run ~retries:2 ~quarantine_dir:dir ~cases:1 ~seed:0
      ~deadline_ms:1000 ~check ()
  in
  Alcotest.(check int) "verified after escalation" 1 s.Explore.Stress.verified;
  (match s.Explore.Stress.results with
  | [ r ] -> Alcotest.(check int) "took two attempts" 2 r.Explore.Stress.attempts
  | _ -> Alcotest.fail "expected one result");
  rm_rf dir

let () =
  Alcotest.run "robustness"
    [
      ( "truncation",
        [
          Alcotest.test_case "budget truncation is surfaced and sufficient \
                              budget restores exhaustive verdicts"
            `Quick test_truncation_soundness;
          Alcotest.test_case "node budget" `Quick test_node_budget;
          Alcotest.test_case "wall-clock deadline" `Quick test_deadline_budget;
          Alcotest.test_case "reasons listed iff counters nonzero" `Quick
            test_reasons_match_counters;
          Alcotest.test_case "race freedom not claimable under truncation"
            `Quick test_race_inconclusive_on_truncation;
          Alcotest.test_case "Verif.check inconclusive under truncation"
            `Quick test_verif_inconclusive_on_truncation;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "completed traces subset of fault-free (100 seeds)"
            `Quick test_fault_subset;
          Alcotest.test_case "verdicts only degrade (100 seeds)" `Quick
            test_fault_verdict_monotone;
        ] );
      ( "errors",
        [
          Alcotest.test_case "positioned parse errors" `Quick
            test_parse_positions;
          Alcotest.test_case "wf raises Ill_formed" `Quick test_wf_exception;
          Alcotest.test_case "exception classification and guard" `Quick
            test_error_classification;
          Alcotest.test_case "behaviors_exn raises typed errors" `Quick
            test_behaviors_exn_typed;
        ] );
      ( "stress",
        [
          Alcotest.test_case "generator deterministic and well-formed" `Quick
            test_generator_deterministic;
          Alcotest.test_case "accounting adds up, inflight cleaned" `Quick
            test_stress_accounting;
          Alcotest.test_case "crash quarantines a reproducible artifact"
            `Quick test_stress_quarantine;
          Alcotest.test_case "budget escalation on retry" `Quick
            test_stress_retry_escalation;
        ] );
    ]
