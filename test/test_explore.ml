(* The bounded-exhaustive explorer and refinement checker: machine
   semantics (Fig. 9/10), Theorem 4.1, prefix-closed behaviour sets,
   and the sampling sanity property. *)

let sorted l = List.sort compare l

let outcomes ?config disc prog =
  let o = Explore.Enum.behaviors_exn ?config disc prog in
  ( Explore.Traceset.done_outs o.Explore.Enum.traces
    |> List.map sorted |> List.sort_uniq compare,
    o )

let test_sb_weak_outcome () =
  let outs, o = outcomes Explore.Enum.Interleaving Litmus.sb.Litmus.prog in
  Alcotest.(check bool) "exact" true o.Explore.Enum.exact;
  Alcotest.(check bool) "0/0 observable" true (List.mem [ 0; 0 ] outs);
  Alcotest.(check bool) "1/1 observable" true (List.mem [ 1; 1 ] outs)

let test_lb_needs_promises () =
  let with_p, _ = outcomes Explore.Enum.Interleaving Litmus.lb.Litmus.prog in
  Alcotest.(check bool) "1/1 with promises" true (List.mem [ 1; 1 ] with_p);
  let without, _ =
    outcomes ~config:Explore.Config.quick Explore.Enum.Interleaving
      Litmus.lb.Litmus.prog
  in
  Alcotest.(check bool) "1/1 impossible without promises" false
    (List.mem [ 1; 1 ] without)

let test_oota_forbidden () =
  let outs, _ = outcomes Explore.Enum.Interleaving Litmus.lb_oota.Litmus.prog in
  Alcotest.(check (list (list int))) "only 0/0" [ [ 0; 0 ] ] outs

let test_syntactic_promise_mode () =
  (* the LB promise (y := 1 is a constant store) is also found by the
     cheap syntactic candidate collector *)
  let cfg = { Explore.Config.default with promise_mode = Explore.Config.Syntactic } in
  let outs, _ = outcomes ~config:cfg Explore.Enum.Interleaving Litmus.lb.Litmus.prog in
  Alcotest.(check bool) "1/1 via syntactic candidates" true
    (List.mem [ 1; 1 ] outs)

let test_every_litmus_claim () =
  List.iter
    (fun (t : Litmus.t) ->
      let outs, o = outcomes Explore.Enum.Interleaving t.Litmus.prog in
      Alcotest.(check bool) (t.Litmus.name ^ " exact") true o.Explore.Enum.exact;
      List.iter
        (fun e ->
          Alcotest.(check bool)
            (Printf.sprintf "%s expects %s" t.Litmus.name
               (String.concat ";" (List.map string_of_int e)))
            true
            (List.mem (sorted e) outs))
        t.Litmus.expected;
      List.iter
        (fun f ->
          Alcotest.(check bool)
            (Printf.sprintf "%s forbids %s" t.Litmus.name
               (String.concat ";" (List.map string_of_int f)))
            false
            (List.mem (sorted f) outs))
        t.Litmus.forbidden)
    Litmus.all

let test_np_equivalence_corpus () =
  (* Theorem 4.1, exhaustively on the corpus. *)
  List.iter
    (fun (t : Litmus.t) ->
      Alcotest.(check bool)
        (t.Litmus.name ^ " interleaving = non-preemptive")
        true
        (Explore.Refine.equivalent_disciplines t.Litmus.prog))
    Litmus.all

let test_np_never_larger () =
  (* the non-preemptive machine visits at most as many states; node
     counts are only comparable single-domain (frontier splitting
     re-expands shared subtrees), so pin domains even under PSOPT_J *)
  let config = { Explore.Config.default with Explore.Config.domains = 1 } in
  List.iter
    (fun (t : Litmus.t) ->
      let _, oi = outcomes ~config Explore.Enum.Interleaving t.Litmus.prog in
      let _, onp = outcomes ~config Explore.Enum.Non_preemptive t.Litmus.prog in
      Alcotest.(check bool)
        (t.Litmus.name ^ " np state count <= interleaving")
        true
        ((Atomic.get onp.Explore.Enum.stats.Explore.Stats.nodes)
        <= (Atomic.get oi.Explore.Enum.stats.Explore.Stats.nodes)))
    Litmus.all

let test_closure () =
  let tr outs ending = { Ps.Event.outs; ending } in
  let s = Explore.Traceset.of_list [ tr [ 1; 2 ] Ps.Event.Done ] in
  let c = Explore.Traceset.closure s in
  Alcotest.(check int) "done + 3 open prefixes" 4 (Explore.Traceset.cardinal c);
  Alcotest.(check bool) "keeps done" true
    (Explore.Traceset.mem (tr [ 1; 2 ] Ps.Event.Done) c);
  Alcotest.(check bool) "[1] open" true
    (Explore.Traceset.mem (tr [ 1 ] Ps.Event.Open) c);
  Alcotest.(check bool) "[] open" true
    (Explore.Traceset.mem (tr [] Ps.Event.Open) c);
  (* closure is idempotent *)
  Alcotest.(check bool) "idempotent" true
    (Explore.Traceset.equal c (Explore.Traceset.closure c))

let test_closure_oracle () =
  (* Pin the closure extensionally against a brute-force oracle on a
     longer trace mix, so the linear-time rewrite cannot drift from
     the spec: closure(S) = S ∪ { prefix·Open | trace ∈ S, prefix of
     its outs }.  Also guards the worst case the old implementation
     made cubic (it rebuilt every prefix with filteri/length). *)
  let tr outs ending = { Ps.Event.outs; ending } in
  let long = List.init 200 (fun i -> i) in
  let s =
    Explore.Traceset.of_list
      [
        tr long Ps.Event.Done;
        tr [ 1; 2; 3 ] Ps.Event.Cut;
        tr [ 1; 2 ] Ps.Event.Done;
        tr [] Ps.Event.Done;
      ]
  in
  let oracle =
    Explore.Traceset.fold
      (fun t acc ->
        let rec prefixes = function
          | [] -> [ [] ]
          | x :: rest -> [] :: List.map (fun p -> x :: p) (prefixes rest)
        in
        List.fold_left
          (fun acc p -> Explore.Traceset.add (tr p Ps.Event.Open) acc)
          acc (prefixes t.Ps.Event.outs))
      s s
  in
  Alcotest.(check bool) "closure matches brute-force oracle" true
    (Explore.Traceset.equal oracle (Explore.Traceset.closure s))

let test_equal_behaviour () =
  let tr outs ending = { Ps.Event.outs; ending } in
  let a = Explore.Traceset.of_list [ tr [ 1; 2 ] Ps.Event.Done ] in
  (* open prefixes are implied, so adding them does not change the
     behaviour... *)
  let b = Explore.Traceset.add (tr [ 1 ] Ps.Event.Open) a in
  Alcotest.(check bool) "implied prefixes are no-ops" true
    (Explore.Traceset.equal_behaviour a b);
  (* ...but a non-prefix open trace, a different output order, or a
     different ending does *)
  Alcotest.(check bool) "extra open trace distinguishes" false
    (Explore.Traceset.equal_behaviour a
       (Explore.Traceset.add (tr [ 3 ] Ps.Event.Open) a));
  Alcotest.(check bool) "output order distinguishes" false
    (Explore.Traceset.equal_behaviour a
       (Explore.Traceset.of_list [ tr [ 2; 1 ] Ps.Event.Done ]));
  Alcotest.(check bool) "ending distinguishes" false
    (Explore.Traceset.equal_behaviour a
       (Explore.Traceset.of_list [ tr [ 1; 2 ] Ps.Event.Cut ]))

let test_traceset_ops () =
  let tr outs ending = { Ps.Event.outs; ending } in
  let s =
    Explore.Traceset.of_list
      [ tr [ 1 ] Ps.Event.Done; tr [ 2 ] Ps.Event.Open; tr [ 3 ] Ps.Event.Cut ]
  in
  Alcotest.(check int) "completed keeps done only" 1
    (Explore.Traceset.cardinal (Explore.Traceset.completed s));
  Alcotest.(check (list (list int))) "done_outs" [ [ 1 ] ]
    (Explore.Traceset.done_outs s);
  Alcotest.(check bool) "has_done" true (Explore.Traceset.has_done [ 1 ] s);
  Alcotest.(check bool) "has_done needs done ending" false
    (Explore.Traceset.has_done [ 2 ] s);
  let p = Explore.Traceset.prepend 9 s in
  Alcotest.(check bool) "prepend" true
    (Explore.Traceset.has_done [ 9; 1 ] p);
  let src = Explore.Traceset.of_list [ tr [ 1 ] Ps.Event.Done; tr [ 4 ] Ps.Event.Done ] in
  Alcotest.(check bool) "is_refined_by" true
    (Explore.Traceset.is_refined_by
       ~target:(Explore.Traceset.of_list [ tr [ 1 ] Ps.Event.Done ])
       ~source:src);
  Alcotest.(check bool) "violation detected" false
    (Explore.Traceset.is_refined_by
       ~target:(Explore.Traceset.of_list [ tr [ 5 ] Ps.Event.Done ])
       ~source:src);
  Alcotest.(check int) "diff_done lists offenders" 1
    (Explore.Traceset.cardinal
       (Explore.Traceset.diff_done
          ~target:(Explore.Traceset.of_list [ tr [ 5 ] Ps.Event.Done ])
          ~source:src))

let test_refinement_verdicts () =
  (* identical programs refine both ways *)
  let p = Litmus.sb.Litmus.prog in
  Alcotest.(check bool) "refl" true (Explore.Refine.refines ~target:p ~source:p ());
  (* Fig. 1: the violating direction and the sound direction *)
  let rep =
    Explore.Refine.check ~target:Litmus.fig1_foo_opt.Litmus.prog
      ~source:Litmus.fig1_foo.Litmus.prog ()
  in
  (match rep.Explore.Refine.verdict with
  | Explore.Refine.Violates bad ->
      Alcotest.(check bool) "counterexample prints 0" true
        (List.exists
           (fun tr ->
             tr.Ps.Event.outs = [ 0 ] && tr.Ps.Event.ending = Ps.Event.Done)
           bad)
  | v ->
      Alcotest.failf "expected violation, got %a" Explore.Refine.pp_verdict v);
  Alcotest.(check bool) "source refines target here (opt has more)" true
    (Explore.Refine.refines ~target:Litmus.fig1_foo.Litmus.prog
       ~source:Litmus.fig1_foo_opt.Litmus.prog ());
  (* the relaxed variants are equivalent *)
  Alcotest.(check bool) "rlx variants equivalent" true
    (Explore.Refine.equivalent Litmus.fig1_foo_rlx.Litmus.prog
       Litmus.fig1_foo_opt_rlx.Litmus.prog)

let test_np_discipline_refinement () =
  (* refinement verdicts agree across disciplines on a violation *)
  let check d =
    (Explore.Refine.check ~discipline:d ~target:Litmus.fig15_bad_tgt.Litmus.prog
       ~source:Litmus.fig15_src.Litmus.prog ())
      .Explore.Refine.verdict
  in
  let v_il = check Explore.Enum.Interleaving in
  let v_np = check Explore.Enum.Non_preemptive in
  let violates = function Explore.Refine.Violates _ -> true | _ -> false in
  Alcotest.(check bool) "interleaving violates" true (violates v_il);
  Alcotest.(check bool) "np violates" true (violates v_np)

let test_cut_reported () =
  (* an artificial tiny budget must surface as inexact, not silently *)
  let cfg = { Explore.Config.quick with max_steps = 3 } in
  let o =
    Explore.Enum.behaviors_exn ~config:cfg Explore.Enum.Interleaving
      Litmus.sb.Litmus.prog
  in
  Alcotest.(check bool) "inexact" false o.Explore.Enum.exact;
  Alcotest.(check bool) "cut trace present" true
    (Explore.Traceset.exists
       (fun tr -> tr.Ps.Event.ending = Ps.Event.Cut)
       o.Explore.Enum.traces);
  (* and refinement refuses to conclude *)
  let rep =
    Explore.Refine.check ~config:cfg ~target:Litmus.sb.Litmus.prog
      ~source:Litmus.sb.Litmus.prog ()
  in
  match rep.Explore.Refine.verdict with
  | Explore.Refine.Inconclusive _ -> ()
  | v -> Alcotest.failf "expected inconclusive, got %a" Explore.Refine.pp_verdict v

let test_memoization_agrees () =
  (* memoized and non-memoized exploration compute the same set *)
  List.iter
    (fun name ->
      let t = Litmus.find name in
      let cfg_no = { Explore.Config.default with memoize = false } in
      let o1 = Explore.Enum.behaviors_exn Explore.Enum.Interleaving t.Litmus.prog in
      let o2 =
        Explore.Enum.behaviors_exn ~config:cfg_no Explore.Enum.Interleaving
          t.Litmus.prog
      in
      Alcotest.(check bool) (name ^ " memo-independent") true
        (Explore.Traceset.equal_behaviour o1.Explore.Enum.traces
           o2.Explore.Enum.traces))
    [ "sb"; "mp_rel_acq"; "cas_exclusive"; "fig16_src" ]

let test_sampling () =
  let freqs = Explore.Random_run.sample ~runs:200 Litmus.lb.Litmus.prog in
  Alcotest.(check bool) "some outcomes" true (freqs <> []);
  let total = List.fold_left (fun a (_, n) -> a + n) 0 freqs in
  Alcotest.(check int) "all runs complete on lb" 200 total;
  (* frequencies sorted descending *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by frequency" true (sorted freqs);
  (* sampling is promise-free: the LB outcome never appears, while
     the exhaustive explorer finds it *)
  Alcotest.(check bool) "1/1 never sampled" false
    (List.mem_assoc [ 1; 1 ] freqs);
  let enumerated =
    (Explore.Enum.behaviors_exn Explore.Enum.Interleaving Litmus.lb.Litmus.prog)
      .Explore.Enum.traces
  in
  List.iter
    (fun (outs, _) ->
      Alcotest.(check bool) "every sampled outcome enumerated" true
        (Explore.Traceset.has_done outs enumerated))
    freqs

let test_random_runs_within_enumeration () =
  (* every sampled trace is in the enumerated behaviour set *)
  List.iter
    (fun (t : Litmus.t) ->
      let o =
        Explore.Enum.behaviors_exn Explore.Enum.Interleaving t.Litmus.prog
      in
      let closure = Explore.Traceset.closure o.Explore.Enum.traces in
      for seed = 0 to 19 do
        let r = Explore.Random_run.run_exn ~seed t.Litmus.prog in
        let tr = r.Explore.Random_run.trace in
        if tr.Ps.Event.ending = Ps.Event.Done then
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d sampled trace enumerated" t.Litmus.name
               seed)
            true
            (Explore.Traceset.mem tr closure)
      done)
    [ Litmus.sb; Litmus.mp_rel_acq; Litmus.coherence; Litmus.cas_exclusive ]

let test_iter_reachable () =
  let count = ref 0 and committed = ref 0 in
  (match
     Explore.Enum.iter_reachable Explore.Enum.Interleaving Litmus.sb.Litmus.prog
       ~f:(fun ~committed:c _ ->
         incr count;
         if c then incr committed)
   with
  | Ok stats ->
      Alcotest.(check int) "visits every node once" (Atomic.get stats.Explore.Stats.nodes)
        !count;
      Alcotest.(check bool) "some committed" true (!committed > 0);
      Alcotest.(check bool) "committed <= all" true (!committed <= !count)
  | Error e -> Alcotest.fail e)

let test_iter_reachable_budget_complete () =
  (* Regression: the walk used to mark a node visited at the depth it
     was *first* seen.  With reservations on, reserve/cancel detours
     are enumerated before the direct switch successors, so DFS first
     reaches many states above their minimal depth; under a tight
     [max_steps] their successors were cut at that deep first visit
     and never reconsidered when the state turned up again on a
     shorter path — undercounting reachable states, and doing so
     non-monotonically in the budget.  Recording the best (lowest)
     depth per node and re-expanding on improvement makes the walk
     budget-complete: once the budget covers every minimal path, the
     count equals the full state space. *)
  let p =
    Lang.Build.(
      program ~atomics:[ "x" ]
        [
          proc "t1"
            [ blk "L0" [ store "x" ~mode:Lang.Modes.WRlx (i 1) ] ret ];
          proc "t2"
            [
              blk "L0"
                [ load "r" "x" ~mode:Lang.Modes.Rlx; print (r "r") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ])
  in
  let count b =
    let cfg =
      { Explore.Config.default with max_steps = b; reservations = true }
    in
    match
      Explore.Enum.iter_reachable ~config:cfg Explore.Enum.Interleaving p
        ~f:(fun ~committed:_ _ -> ())
    with
    | Ok st -> ((Atomic.get st.Explore.Stats.nodes), (Atomic.get st.Explore.Stats.transitions))
    | Error e -> Alcotest.fail e
  in
  let full = count 40 in
  Alcotest.(check (pair int int))
    "tight budget covers the full state space" full (count 15);
  let n12, _ = count 12 and n13, _ = count 13 in
  Alcotest.(check bool) "node count monotone in the budget" true (n12 <= n13)

let test_reservations_no_new_outcomes () =
  (* Enumerating reserve/cancel steps may widen the state space but
     must not change the completed outcomes: reservations only block
     others, never enable new values.  Kept to a small two-thread
     program — reservation interleavings multiply the state space
     (the explorer caps threads at one outstanding reservation; the
     certification-level uses are unit-tested in test_cert). *)
  let p =
    Lang.Build.(
      program ~atomics:[ "x" ]
        [
          proc "t1"
            [ blk "L0" [ store "x" ~mode:Lang.Modes.WRlx (i 1) ] ret ];
          proc "t2"
            [
              blk "L0"
                [ load "r" "x" ~mode:Lang.Modes.Rlx; print (r "r") ]
                ret;
            ];
        ]
        ~threads:[ "t1"; "t2" ])
  in
  let cfg = { Explore.Config.default with reservations = true } in
  let base, _ = outcomes Explore.Enum.Interleaving p in
  let with_rsv, _ = outcomes ~config:cfg Explore.Enum.Interleaving p in
  Alcotest.(check (list (list int)))
    "outcomes stable under reservations" base with_rsv

let test_witness_lb () =
  (* The paper's annotated LB execution: a promise must appear. *)
  match Explore.Witness.find ~outs:[ 1; 1 ] Litmus.lb.Litmus.prog with
  | None -> Alcotest.fail "LB 1/1 should have a witness"
  | Some w ->
      Alcotest.(check bool) "contains a promise step" true
        (List.exists
           (fun (s : Explore.Witness.step) -> s.Explore.Witness.event = Ps.Event.Prm)
           w);
      Alcotest.(check int) "two output steps" 2
        (List.length
           (List.filter
              (fun (s : Explore.Witness.step) ->
                match s.Explore.Witness.event with
                | Ps.Event.Out _ -> true
                | _ -> false)
              w))

let test_witness_forbidden () =
  Alcotest.(check bool) "oota 1/1 has no witness" true
    (Explore.Witness.forbidden ~outs:[ 1; 1 ] Litmus.lb_oota.Litmus.prog);
  Alcotest.(check bool) "mp_rel_acq stale payload has no witness" true
    (Explore.Witness.forbidden ~outs:[ 0 ] Litmus.mp_rel_acq.Litmus.prog);
  (* out-order sensitivity: the witness search asks for the exact
     sequence, and mp only ever emits one output *)
  Alcotest.(check bool) "mp 42 observable" true
    (Explore.Witness.find ~outs:[ 42 ] Litmus.mp_rel_acq.Litmus.prog <> None)

let test_witness_np () =
  match
    Explore.Witness.find ~discipline:Explore.Enum.Non_preemptive
      ~outs:[ 1; 1 ] Litmus.lb.Litmus.prog
  with
  | None -> Alcotest.fail "np machine should also witness LB 1/1"
  | Some _ -> ()

let test_machine_init () =
  match Ps.Machine.init Litmus.sb.Litmus.prog with
  | Error e -> Alcotest.fail e
  | Ok w ->
      Alcotest.(check (list int)) "tids" [ 0; 1 ] (Ps.Machine.tids w);
      Alcotest.(check int) "cur" 0 w.Ps.Machine.cur;
      Alcotest.(check bool) "not finished" false (Ps.Machine.all_finished w);
      Alcotest.(check bool) "not terminal" false (Ps.Machine.terminal w)

let () =
  Alcotest.run "explore"
    [
      ( "semantics",
        [
          Alcotest.test_case "sb weak outcome" `Quick test_sb_weak_outcome;
          Alcotest.test_case "lb needs promises" `Quick test_lb_needs_promises;
          Alcotest.test_case "oota forbidden" `Quick test_oota_forbidden;
          Alcotest.test_case "syntactic promises" `Quick
            test_syntactic_promise_mode;
          Alcotest.test_case "whole corpus claims" `Slow test_every_litmus_claim;
        ] );
      ( "non-preemptive",
        [
          Alcotest.test_case "Theorem 4.1 on corpus" `Slow
            test_np_equivalence_corpus;
          Alcotest.test_case "state-space reduction" `Slow test_np_never_larger;
          Alcotest.test_case "verdicts agree on violations" `Quick
            test_np_discipline_refinement;
        ] );
      ( "traces",
        [
          Alcotest.test_case "prefix closure" `Quick test_closure;
          Alcotest.test_case "closure oracle" `Quick test_closure_oracle;
          Alcotest.test_case "equal behaviour" `Quick test_equal_behaviour;
          Alcotest.test_case "trace-set operations" `Quick test_traceset_ops;
          Alcotest.test_case "refinement verdicts" `Quick
            test_refinement_verdicts;
          Alcotest.test_case "cuts reported" `Quick test_cut_reported;
          Alcotest.test_case "memoization-independent" `Quick
            test_memoization_agrees;
          Alcotest.test_case "random runs enumerated" `Quick
            test_random_runs_within_enumeration;
          Alcotest.test_case "sampling histogram" `Quick test_sampling;
        ] );
      ( "safety",
        [
          Alcotest.test_case "Safe(P) on the corpus" `Quick (fun () ->
              List.iter
                (fun (t : Litmus.t) ->
                  Alcotest.(check bool) (t.Litmus.name ^ " safe") true
                    (Explore.Refine.safe t.Litmus.prog))
                [ Litmus.sb; Litmus.fig4; Litmus.spinlock ]);
        ] );
      ( "reservations",
        [
          Alcotest.test_case "no new outcomes" `Quick
            test_reservations_no_new_outcomes;
        ] );
      ( "witness",
        [
          Alcotest.test_case "LB annotated execution" `Quick test_witness_lb;
          Alcotest.test_case "forbidden outcomes" `Quick
            test_witness_forbidden;
          Alcotest.test_case "non-preemptive" `Quick test_witness_np;
        ] );
      ( "machine",
        [
          Alcotest.test_case "iter_reachable" `Quick test_iter_reachable;
          Alcotest.test_case "iter_reachable budget-complete" `Quick
            test_iter_reachable_budget_complete;
          Alcotest.test_case "init" `Quick test_machine_init;
        ] );
    ]
