(* The time-travel replay subsystem: store round-trips and typed
   corruption errors (the five-damage-modes discipline of the service
   store), snapshot-plus-replay state reconstruction at every step,
   the O(K) keyframe jump bound, the stepping protocol, and
   counterexample shrinking — ddmin over switch points and greedy
   program reduction, every candidate re-validated by replaying it. *)

module Stepper = Explore.Stepper
module Witness = Explore.Witness
module Trace = Replay.Trace
module Store = Replay.Store
module Session = Replay.Session
module Proto = Replay.Proto

let config = Explore.Config.default
let il = Explore.Enum.Interleaving
let lb = Litmus.lb.Litmus.prog

let tmp_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psopt-test-replay-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let fresh =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat tmp_dir (Printf.sprintf "%03d-%s" !n name)

let slurp path = In_channel.with_open_bin path In_channel.input_all

let spit path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let record_lb ?(eager = false) path =
  match
    Replay.Record.record_witness ~config ~eager_switch:eager ~outs:[ 1; 1 ]
      ~path lb
  with
  | Ok n -> n
  | Error m -> Alcotest.fail ("record lb: " ^ m)

let open_exn path =
  match Store.open_ path with
  | Ok r -> r
  | Error e -> Alcotest.fail (Store.error_to_string e)

let read_all_exn r =
  match Store.read_all r with
  | Ok rs -> rs
  | Error e -> Alcotest.fail (Store.error_to_string e)

let load_exn path =
  let r = open_exn path in
  let s = Session.load r in
  Store.close_reader r;
  match s with
  | Ok s -> s
  | Error e -> Alcotest.fail (Store.error_to_string e)

let lb_trail () =
  match Witness.find_trail ~config ~outs:[ 1; 1 ] lb with
  | Some (st0, trail) -> (st0, trail)
  | None -> Alcotest.fail "no lb 1,1 witness"

(* --------------------------------------------------------------- *)
(* Store round-trips *)

let test_store_roundtrip () =
  let p1 = fresh "lb.trace" in
  let n = record_lb p1 in
  Alcotest.(check bool) "some steps recorded" true (n > 0);
  let r1 = open_exn p1 in
  Alcotest.(check bool) "index used, not rebuilt" false
    (Store.index_rebuilt r1);
  let h = Store.header r1 in
  Alcotest.(check bool) "program round-trips" true
    (Lang.Ast.equal_program lb h.Trace.program);
  Alcotest.(check (list int)) "outs round-trip" [ 1; 1 ] h.Trace.outs;
  Alcotest.(check bool) "discipline round-trips" true (h.Trace.discipline = il);
  let records = read_all_exn r1 in
  Store.close_reader r1;
  Alcotest.(check int) "length agrees" n (List.length records);
  (* reopen → rewrite → byte-identical store *)
  let p2 = fresh "lb-rewrite.trace" in
  (match Store.write_all p2 h records with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check string) "rewrite is byte-identical" (slurp p1) (slurp p2);
  Alcotest.(check string) "index rewrite is byte-identical"
    (slurp (p1 ^ ".idx"))
    (slurp (p2 ^ ".idx"));
  let r2 = open_exn p2 in
  let records2 = read_all_exn r2 in
  Store.close_reader r2;
  Alcotest.(check bool) "records round-trip" true
    (List.for_all2 Trace.equal_record records records2)

let test_index_vs_scan () =
  let p = fresh "lb-eager.trace" in
  let n = record_lb ~eager:true p in
  let r = open_exn p in
  let preds =
    [
      ( "promise",
        (fun (ix : Store.ix) -> ix.Store.ix_kind = Trace.Promise_step),
        fun (rec_ : Trace.record) -> rec_.Trace.kind = Trace.Promise_step );
      ( "tid 1",
        (fun ix -> ix.Store.ix_tid = 1),
        fun rec_ -> rec_.Trace.tid = 1 );
      ( "loc y",
        (fun ix -> ix.Store.ix_loc = Some "y"),
        fun rec_ -> rec_.Trace.loc = Some "y" );
    ]
  in
  List.iter
    (fun (what, f_ix, f_rec) ->
      for from = 0 to n do
        let via_scan =
          match Store.find_scan r ~from ~f:f_rec with
          | Ok x -> x
          | Error e -> Alcotest.fail (Store.error_to_string e)
        in
        Alcotest.(check (option int))
          (Printf.sprintf "%s from %d: index agrees with scan" what from)
          via_scan
          (Store.find_ix r ~from ~f:f_ix)
      done)
    preds;
  let records = read_all_exn r in
  Store.close_reader r;
  (* a missing sidecar is rebuilt by scanning, same answers *)
  Sys.remove (p ^ ".idx");
  let r2 = open_exn p in
  Alcotest.(check bool) "missing index rebuilt" true (Store.index_rebuilt r2);
  Alcotest.(check bool) "rebuilt index reads the same records" true
    (List.for_all2 Trace.equal_record records (read_all_exn r2));
  Store.close_reader r2

(* Five-plus damage modes, each a typed error (or a silent rebuild for
   the advisory sidecar), mirroring the service store's discipline. *)
let test_corruption_modes () =
  let p = fresh "victim.trace" in
  ignore (record_lb p);
  let data = slurp p in
  let expect what pred = function
    | Error e ->
        Alcotest.(check bool)
          (what ^ ": " ^ Store.error_to_string e)
          true (pred e)
    | Ok _ -> Alcotest.fail (what ^ ": damage not detected")
  in
  (* 1: missing file *)
  expect "missing"
    (function Store.Missing _ -> true | _ -> false)
    (Store.open_ (fresh "nonexistent.trace"));
  (* 2: not a replay trace *)
  let bad_magic = fresh "bad-magic.trace" in
  spit bad_magic "not a trace\nat all\n";
  expect "bad magic"
    (function Store.Bad_magic _ -> true | _ -> false)
    (Store.open_ bad_magic);
  (* 3: flipped byte inside the header frame *)
  let flip_at s i =
    let b = Bytes.of_string s in
    Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
    Bytes.to_string b
  in
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  let rfind_sub s sub =
    let rec go best i =
      match find_sub (String.sub s i (String.length s - i)) sub with
      | None -> best
      | Some j -> go (Some (i + j)) (i + j + 1)
    in
    go None 0
  in
  let bad_header = fresh "bad-header.trace" in
  (match find_sub data "replay-header" with
  | None -> Alcotest.fail "no header payload?"
  | Some i -> spit bad_header (flip_at data (i + 1)));
  expect "damaged header"
    (function Store.Bad_header _ -> true | _ -> false)
    (Store.open_ bad_header);
  (* 4: truncated mid-record (no sidecar: detected while scanning) *)
  let truncated = fresh "truncated.trace" in
  spit truncated (String.sub data 0 (String.length data - 10));
  expect "truncated"
    (function Store.Truncated _ -> true | _ -> false)
    (Store.open_ truncated);
  (* 5: flipped byte inside a record payload.  With the (still valid)
     sidecar the damage is caught at read time by the digest; without
     it, at open time by the rebuild scan. *)
  let corrupt = fresh "corrupt.trace" in
  (match rfind_sub data "(step " with
  | None -> Alcotest.fail "no record payload?"
  | Some i -> spit corrupt (flip_at data (i + 1)));
  expect "corrupt record, scan path"
    (function Store.Corrupt_record _ -> true | _ -> false)
    (Store.open_ corrupt);
  let ( let* ) = Result.bind in
  spit (corrupt ^ ".idx") (slurp (p ^ ".idx"));
  expect "corrupt record, index path"
    (function Store.Corrupt_record _ -> true | _ -> false)
    (let* r = Store.open_ corrupt in
     let all = Store.read_all r in
     Store.close_reader r;
     all);
  (* 6: a damaged sidecar is advisory — silently rebuilt *)
  let stale = fresh "stale-idx.trace" in
  spit stale data;
  spit (stale ^ ".idx") "psopt-replay-idx/1\ndata 1 0\n";
  match Store.open_ stale with
  | Error e -> Alcotest.fail (Store.error_to_string e)
  | Ok r ->
      Alcotest.(check bool) "stale index rebuilt" true (Store.index_rebuilt r);
      Store.close_reader r

(* --------------------------------------------------------------- *)
(* Session: state reconstruction *)

(* Record → reload → the reconstructed state at *every* position
   equals the state the recorder saw (exhaustive, the acceptance
   criterion). *)
let test_state_equality_everywhere () =
  let st0, trail = lb_trail () in
  let states = Array.of_list (Stepper.trail_states st0 trail) in
  let path = fresh "lb-session.trace" in
  ignore (record_lb path);
  let t = load_exn path in
  Alcotest.(check int) "lengths agree" (Array.length states - 1)
    (Session.length t);
  for n = 0 to Session.length t do
    (match Session.jump t n with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    Alcotest.(check bool)
      (Printf.sprintf "state at %d reconstructed exactly" n)
      true
      (Stepper.equal_state states.(n) (Session.state t))
  done;
  (* and backwards, through a different mix of keyframe starts *)
  for n = Session.length t downto 0 do
    ignore (Session.jump t n);
    Alcotest.(check bool)
      (Printf.sprintf "state at %d (backward sweep)" n)
      true
      (Stepper.equal_state states.(n) (Session.state t))
  done

let test_keyframe_jump_cost () =
  let path = fresh "lb-kf.trace" in
  ignore (record_lb ~eager:true path);
  let r = open_exn path in
  let t =
    match Session.load ~keyframe_every:4 r with
    | Ok t -> t
    | Error e -> Alcotest.fail (Store.error_to_string e)
  in
  Store.close_reader r;
  let len = Session.length t in
  Alcotest.(check int) "validation pass is not billed" 0
    (Session.replayed_steps t);
  (* jumping backward to any position replays < K steps from a
     keyframe — never O(n) from the start *)
  ignore (Session.jump t len);
  for n = len - 1 downto 0 do
    let before = Session.replayed_steps t in
    ignore (Session.jump t n);
    let cost = Session.replayed_steps t - before in
    Alcotest.(check bool)
      (Printf.sprintf "jump to %d cost %d < K=4" n cost)
      true (cost < 4)
  done;
  (* landing exactly on a keyframe is free *)
  ignore (Session.jump t len);
  let before = Session.replayed_steps t in
  ignore (Session.jump t 4);
  Alcotest.(check int) "keyframe hit is free" 0
    (Session.replayed_steps t - before);
  (* forward single-stepping never restarts from a distant keyframe:
     each step replays at most one step (zero when it lands exactly on
     a keyframe and restores the snapshot instead) *)
  ignore (Session.jump t 0);
  let before = ref (Session.replayed_steps t) in
  for _ = 1 to len do
    (match Session.step t with
    | Ok (Some _) -> ()
    | Ok None -> Alcotest.fail "ended early"
    | Error m -> Alcotest.fail m);
    let cost = Session.replayed_steps t - !before in
    before := Session.replayed_steps t;
    Alcotest.(check bool) "a single step replays at most one step" true
      (cost <= 1)
  done

let test_step_back_records () =
  let path = fresh "lb-stepback.trace" in
  ignore (record_lb path);
  let t = load_exn path in
  let len = Session.length t in
  let forward = ref [] in
  for _ = 1 to len do
    match Session.step t with
    | Ok (Some r) -> forward := r :: !forward
    | Ok None | Error _ -> Alcotest.fail "step failed"
  done;
  Alcotest.(check bool) "step at end is Ok None" true
    (Session.step t = Ok None);
  let backward = ref [] in
  for _ = 1 to len do
    match Session.back t with
    | Ok (Some r) -> backward := r :: !backward
    | Ok None | Error _ -> Alcotest.fail "back failed"
  done;
  Alcotest.(check bool) "back at start is Ok None" true
    (Session.back t = Ok None);
  Alcotest.(check int) "back to position 0" 0 (Session.pos t);
  (* the records crossed going back are the records crossed going
     forward, in reverse *)
  Alcotest.(check bool) "same records both ways" true
    (List.for_all2 Trace.equal_record (List.rev !forward) !backward)

(* --------------------------------------------------------------- *)
(* Protocol *)

let test_proto_sexp_roundtrip () =
  let reqs =
    [
      Proto.Info; Proto.Where; Proto.Step; Proto.Back; Proto.Jump 42;
      Proto.Mem; Proto.Views; Proto.Why "a loc with spaces";
      Proto.Next_at "x"; Proto.Next_promise; Proto.Schedule; Proto.Quit;
    ]
  in
  List.iter
    (fun req ->
      match Proto.request_of_sexp (Proto.sexp_of_request req) with
      | Ok req' ->
          Alcotest.(check bool) "request round-trips" true (req = req')
      | Error m -> Alcotest.fail m)
    reqs;
  let replies =
    [
      Proto.Ok { pos = 3; len = 11; text = "multi\nline text" };
      Proto.Err "no such step";
      Proto.Bye;
    ]
  in
  List.iter
    (fun rep ->
      match Proto.reply_of_sexp (Proto.sexp_of_reply rep) with
      | Ok rep' -> Alcotest.(check bool) "reply round-trips" true (rep = rep')
      | Error m -> Alcotest.fail m)
    replies

let test_parse_command () =
  let ok line req =
    match Proto.parse_command line with
    | Ok r -> Alcotest.(check bool) (line ^ " parses") true (r = req)
    | Error m -> Alcotest.fail (line ^ ": " ^ m)
  in
  ok "s" Proto.Step;
  ok " step " Proto.Step;
  ok "b" Proto.Back;
  ok "j 7" (Proto.Jump 7);
  ok "i" Proto.Info;
  ok "st" Proto.Where;
  ok "mem" Proto.Mem;
  ok "views" Proto.Views;
  ok "why y" (Proto.Why "y");
  ok "next x" (Proto.Next_at "x");
  ok "prm" Proto.Next_promise;
  ok "sched" Proto.Schedule;
  ok "q" Proto.Quit;
  List.iter
    (fun bad ->
      match Proto.parse_command bad with
      | Ok _ -> Alcotest.fail (bad ^ " should not parse")
      | Error m ->
          Alcotest.(check bool) (bad ^ " explains itself") true
            (String.length m > 0))
    [ "j"; "j x"; "flurb"; "help" ]

let test_proto_handle () =
  let path = fresh "lb-proto.trace" in
  ignore (record_lb path);
  let t = load_exn path in
  let len = Session.length t in
  let ok_text = function
    | Proto.Ok { text; _ } -> text
    | Proto.Err m -> Alcotest.fail ("unexpected error: " ^ m)
    | Proto.Bye -> Alcotest.fail "unexpected bye"
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  let info = ok_text (Proto.handle t Proto.Info) in
  Alcotest.(check bool) "info names the step count" true
    (contains info (string_of_int len));
  ignore (Proto.handle t Proto.Step);
  Alcotest.(check int) "step advances" 1 (Session.pos t);
  ignore (Proto.handle t (Proto.Jump 3));
  Alcotest.(check int) "jump lands" 3 (Session.pos t);
  ignore (Proto.handle t Proto.Back);
  Alcotest.(check int) "back retreats" 2 (Session.pos t);
  Alcotest.(check bool) "mem shows both locations" true
    (let m = ok_text (Proto.handle t Proto.Mem) in
     contains m "x" && contains m "y");
  Alcotest.(check bool) "views show a view per thread" true
    (contains (ok_text (Proto.handle t Proto.Views)) "t1");
  Alcotest.(check bool) "why knows the promise" true
    (contains (ok_text (Proto.handle t (Proto.Why "y"))) "promise");
  (* the lb witness promises y at step 0: from position 0 the next
     *upcoming* promise is skipped (progress), reported as absent *)
  ignore (Proto.handle t (Proto.Jump 0));
  Alcotest.(check bool) "next-promise makes progress" true
    (contains (ok_text (Proto.handle t Proto.Next_promise)) "no promise");
  (* next-at jumps to the next step touching x *)
  ignore (Proto.handle t (Proto.Jump 0));
  let _ = ok_text (Proto.handle t (Proto.Next_at "x")) in
  (match Session.record_at t (Session.pos t) with
  | Some r -> Alcotest.(check (option string)) "stopped before an x step"
      (Some "x") r.Trace.loc
  | None -> Alcotest.fail "next-at ran off the end");
  Alcotest.(check bool) "schedule shows every step" true
    (contains (ok_text (Proto.handle t Proto.Schedule)) "prm");
  Alcotest.(check bool) "quit says bye" true
    (Proto.handle t Proto.Quit = Proto.Bye);
  match Proto.handle t (Proto.Jump (len + 5)) with
  | Proto.Err _ -> ()
  | _ -> Alcotest.fail "out-of-range jump must be a protocol error"

(* --------------------------------------------------------------- *)
(* Shrinking *)

let test_ddmin () =
  let core = [ 3; 7; 15 ] in
  let tried = ref 0 in
  let check l =
    incr tried;
    List.for_all (fun c -> List.mem c l) core
  in
  let items = List.init 20 (fun i -> i) in
  Alcotest.(check (list int)) "ddmin finds the 1-minimal core" core
    (List.sort compare (Replay.Shrink.ddmin ~check items));
  Alcotest.(check (list int)) "empty passes => empty" []
    (Replay.Shrink.ddmin ~check:(fun _ -> true) items);
  Alcotest.(check (list int)) "already minimal stays" [ 5 ]
    (Replay.Shrink.ddmin ~check:(fun l -> List.mem 5 l) [ 5 ])

let outs_of (w : Witness.t) =
  List.filter_map
    (fun (s : Witness.step) ->
      match s.Witness.event with Ps.Event.Out v -> Some v | _ -> None)
    w

let test_shrink_schedule () =
  (* an eager-switch witness is deliberately switch-heavy input *)
  match Witness.find_trail ~config ~eager_switch:true ~outs:[ 1; 1 ] lb with
  | None -> Alcotest.fail "no eager lb witness"
  | Some (_, trail) -> (
      let w = Witness.of_trail trail in
      match Replay.Shrink.schedule ~config lb w with
      | Error m -> Alcotest.fail m
      | Ok res ->
          Alcotest.(check bool)
            (Printf.sprintf "switches strictly reduced: %d -> %d"
               res.Replay.Shrink.switches_before
               res.Replay.Shrink.switches_after)
            true
            (res.Replay.Shrink.switches_after
            < res.Replay.Shrink.switches_before);
          Alcotest.(check (list int)) "output sequence preserved" [ 1; 1 ]
            (outs_of res.Replay.Shrink.witness);
          (* shrinking the shrunk schedule is a fixpoint *)
          (match Replay.Shrink.schedule ~config lb res.Replay.Shrink.witness with
          | Error m -> Alcotest.fail m
          | Ok res2 ->
              Alcotest.(check int) "shrink is a fixpoint"
                res.Replay.Shrink.switches_after
                res2.Replay.Shrink.switches_after);
          (* the shrunk schedule still drives — and can be recorded
             and replayed like any trace *)
          let path = fresh "lb-shrunk.trace" in
          (match
             Replay.Record.record_schedule ~config ~outs:[ 1; 1 ] ~path lb
               res.Replay.Shrink.witness
           with
          | Ok n -> Alcotest.(check bool) "shrunk trace recorded" true (n > 0)
          | Error m -> Alcotest.fail m);
          ignore (load_exn path))

(* The paper's Fig. 1 refinement violation, end to end: find the
   target-only behaviour, record it (the `verify --record` path),
   shrink the schedule, and check the reduced witness still refutes. *)
let test_shrink_refutation () =
  let src = Litmus.fig1_foo.Litmus.prog in
  let tgt = Litmus.fig1_foo_opt.Litmus.prog in
  let rep = Explore.Refine.check ~config ~target:tgt ~source:src () in
  match rep.Explore.Refine.verdict with
  | Explore.Refine.Violates (tr :: _) -> (
      let outs = tr.Ps.Event.outs in
      let path = fresh "fig1-refutation.trace" in
      (match Replay.Record.record_witness ~config ~outs ~path tgt with
      | Ok n -> Alcotest.(check bool) "refutation recorded" true (n > 0)
      | Error m -> Alcotest.fail m);
      let t = load_exn path in
      let w =
        List.filter_map
          (fun n ->
            match Session.record_at t n with
            | Some r -> (
                match r.Trace.event with
                | Some e -> Some { Witness.tid = r.Trace.tid; event = e }
                | None -> None)
            | None -> None)
          (List.init (Session.length t) Fun.id)
      in
      match Replay.Shrink.schedule ~config tgt w with
      | Error m -> Alcotest.fail m
      | Ok res ->
          Alcotest.(check (list int)) "shrunk witness keeps the refuting outs"
            outs
            (outs_of res.Replay.Shrink.witness);
          (* still a refutation: the source cannot produce it *)
          Alcotest.(check bool) "source still cannot produce the outs" true
            (Witness.find ~config ~outs src = None))
  | _ -> Alcotest.fail "fig1 pair must violate refinement"

let test_shrink_program () =
  (* pad lb with dead weight the reducer must strip *)
  let pad (p : Lang.Ast.program) =
    let pad_block (b : Lang.Ast.block) =
      { b with Lang.Ast.instrs = Lang.Ast.Skip :: b.Lang.Ast.instrs }
    in
    let pad_heap (ch : Lang.Ast.codeheap) =
      {
        ch with
        Lang.Ast.blocks = Lang.Ast.LabelMap.map pad_block ch.Lang.Ast.blocks;
      }
    in
    { p with Lang.Ast.code = Lang.Ast.FnameMap.map pad_heap p.Lang.Ast.code }
  in
  let count_instrs (p : Lang.Ast.program) =
    Lang.Ast.FnameMap.fold
      (fun _ (ch : Lang.Ast.codeheap) acc ->
        Lang.Ast.LabelMap.fold
          (fun _ (b : Lang.Ast.block) acc ->
            acc + List.length b.Lang.Ast.instrs)
          ch.Lang.Ast.blocks acc)
      p.Lang.Ast.code 0
  in
  let padded = pad lb in
  (match Lang.Wf.check padded with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "padded program must stay well-formed");
  let keep p = Witness.find ~config ~outs:[ 1; 1 ] p <> None in
  Alcotest.(check bool) "padded program still has the witness" true
    (keep padded);
  let p', tried = Replay.Shrink.program ~keep padded in
  Alcotest.(check bool) "candidates were tried" true (tried > 0);
  Alcotest.(check bool)
    (Printf.sprintf "instructions reduced: %d -> %d" (count_instrs padded)
       (count_instrs p'))
    true
    (count_instrs p' < count_instrs padded);
  Alcotest.(check bool) "reduced program still has the witness" true (keep p')

(* --------------------------------------------------------------- *)
(* Stress quarantine integration *)

let test_quarantine_trace () =
  let qdir = fresh "quarantine" in
  let recorded = ref [] in
  let on_quarantine ~dir ~base ~config p =
    let o = Explore.Enum.behaviors_exn ~config il p in
    match Explore.Traceset.done_outs o.Explore.Enum.traces with
    | [] -> ()
    | outs :: _ -> (
        let path = Filename.concat dir (base ^ ".trace") in
        match
          Replay.Record.record_witness ~config ~note:("quarantine " ^ base)
            ~outs ~path p
        with
        | Ok _ -> recorded := path :: !recorded
        | Error m -> Alcotest.fail ("quarantine record: " ^ m))
  in
  let seed = 5 in
  let s =
    Explore.Stress.run ~quarantine_dir:qdir ~on_quarantine ~cases:1 ~seed
      ~deadline_ms:5000
      ~check:(fun ~config:_ _ -> failwith "injected crash")
      ()
  in
  Alcotest.(check int) "the case was quarantined" 1
    s.Explore.Stress.quarantined;
  match !recorded with
  | [ path ] ->
      let t = load_exn path in
      Alcotest.(check bool) "quarantine trace replays" true
        (Session.length t > 0);
      (* the trace replays under the exact reduction mode the case ran
         with — the header preserves the per-case config override *)
      let h = Session.header t in
      Alcotest.(check bool) "recorded under the case's reduction mode" true
        (h.Trace.config.Explore.Config.reduction
        = Explore.Stress.reduction_of_seed seed)
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected one recorded trace, got %d" (List.length l))

(* --------------------------------------------------------------- *)

let () =
  Alcotest.run "replay"
    [
      ( "store",
        [
          Alcotest.test_case "record → reopen → rewrite round-trip" `Quick
            test_store_roundtrip;
          Alcotest.test_case "index agrees with scan (incl. rebuild)" `Quick
            test_index_vs_scan;
          Alcotest.test_case "damage modes are typed errors" `Quick
            test_corruption_modes;
        ] );
      ( "session",
        [
          Alcotest.test_case "state reconstructed exactly at every step"
            `Quick test_state_equality_everywhere;
          Alcotest.test_case "jumps replay O(K) from keyframes" `Quick
            test_keyframe_jump_cost;
          Alcotest.test_case "step/back cross the same records" `Quick
            test_step_back_records;
        ] );
      ( "proto",
        [
          Alcotest.test_case "request/reply sexp round-trips" `Quick
            test_proto_sexp_roundtrip;
          Alcotest.test_case "command syntax" `Quick test_parse_command;
          Alcotest.test_case "handler navigates a session" `Quick
            test_proto_handle;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "ddmin is 1-minimal" `Quick test_ddmin;
          Alcotest.test_case "schedule: switch points strictly reduced"
            `Quick test_shrink_schedule;
          Alcotest.test_case "fig1 refutation shrinks and still refutes"
            `Quick test_shrink_refutation;
          Alcotest.test_case "program reducer strips dead weight" `Quick
            test_shrink_program;
        ] );
      ( "stress",
        [
          Alcotest.test_case "quarantined cases get a replayable trace"
            `Quick test_quarantine_trace;
        ] );
    ]
