(* The telemetry subsystem: registry semantics, histogram math, trace
   recording/export/validation, and the logger's formatting contract.

   Everything here runs against the process-global registry, so tests
   use distinct metric names and assert on deltas, never on absolute
   registry state. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --------------------------------------------------------------- *)
(* Metrics registry *)

let test_counter_idempotent () =
  let a = Obs.Metrics.counter "test_obs_idem_total" in
  let b = Obs.Metrics.counter "test_obs_idem_total" in
  Obs.Metrics.incr a;
  Obs.Metrics.add b 2;
  (* same (name, labels) pair: both handles reach one cell *)
  Alcotest.(check int) "one cell behind two handles" 3 (Obs.Metrics.value a);
  (* distinct labels are distinct cells *)
  let l1 = Obs.Metrics.counter ~labels:[ ("k", "v1") ] "test_obs_lbl_total" in
  let l2 = Obs.Metrics.counter ~labels:[ ("k", "v2") ] "test_obs_lbl_total" in
  Obs.Metrics.incr l1;
  Alcotest.(check int) "labelled siblings are independent" 0
    (Obs.Metrics.value l2)

let test_gauge_set () =
  let g = Obs.Metrics.gauge "test_obs_gauge" in
  Obs.Metrics.set g 41;
  Obs.Metrics.set g 7;
  Alcotest.(check int) "set overwrites" 7 (Obs.Metrics.value g)

let test_histogram_summary () =
  let h = Obs.Metrics.histogram "test_obs_hist_ns" in
  Alcotest.(check int) "fresh histogram is empty" 0
    (Obs.Metrics.histogram_count h);
  let s0 = Obs.Metrics.summary h in
  Alcotest.(check int) "empty summary: count" 0 s0.Obs.Metrics.count;
  Alcotest.(check (float 0.0)) "empty summary: p99" 0.0 s0.Obs.Metrics.p99_ns;
  (* 90 small observations and 10 large ones: p50 must land in the
     small bucket's range, p99 in the large one's.  Buckets are
     power-of-two, so quantile estimates carry at most 2x error —
     assert bucket membership, not exact values. *)
  for _ = 1 to 90 do
    Obs.Metrics.observe_ns h 2_000
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe_ns h 1_000_000
  done;
  let s = Obs.Metrics.summary h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
  Alcotest.(check int) "sum" (90 * 2_000 + 10 * 1_000_000)
    s.Obs.Metrics.sum_ns;
  Alcotest.(check bool) "p50 in the small bucket" true
    (s.Obs.Metrics.p50_ns >= 1024. && s.Obs.Metrics.p50_ns <= 4096.);
  Alcotest.(check bool) "p99 in the large bucket" true
    (s.Obs.Metrics.p99_ns > 500_000. && s.Obs.Metrics.p99_ns <= 2_097_152.);
  Alcotest.(check bool) "quantiles are monotone" true
    (s.Obs.Metrics.p50_ns <= s.Obs.Metrics.p90_ns
    && s.Obs.Metrics.p90_ns <= s.Obs.Metrics.p99_ns);
  (* negative observations clamp instead of raising *)
  Obs.Metrics.observe_ns h (-5);
  Alcotest.(check int) "negative observation counted" 101
    (Obs.Metrics.histogram_count h)

let test_histogram_time () =
  let h = Obs.Metrics.histogram "test_obs_time_ns" in
  let r = Obs.Metrics.time h (fun () -> 42) in
  Alcotest.(check int) "time returns the thunk's value" 42 r;
  Alcotest.(check int) "one observation" 1 (Obs.Metrics.histogram_count h);
  (* the duration is observed even when the thunk raises *)
  (try Obs.Metrics.time h (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "exception still observed" 2
    (Obs.Metrics.histogram_count h)

let test_render_shape () =
  let c = Obs.Metrics.counter ~help:"a test counter" "test_obs_render_total" in
  Obs.Metrics.add c 5;
  let h = Obs.Metrics.histogram "test_obs_render_ns" in
  Obs.Metrics.observe_ns h 2_000;
  Obs.Metrics.observe_ns h 3_000_000;
  let text = Obs.Metrics.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render contains " ^ needle) true
        (contains text needle))
    [ "# HELP test_obs_render_total a test counter";
      "# TYPE test_obs_render_total counter";
      "test_obs_render_total 5";
      "# TYPE test_obs_render_ns histogram";
      "test_obs_render_ns_count 2";
      "test_obs_render_ns_sum 3002000";
      "test_obs_render_ns_bucket{le=\"+Inf\"} 2" ];
  (* buckets are cumulative: the 2048-bucket holds the small
     observation, every bucket past 2^22 ns holds both *)
  Alcotest.(check bool) "small bucket cumulative" true
    (contains text "test_obs_render_ns_bucket{le=\"2048\"} 1");
  Alcotest.(check bool) "large bucket cumulative" true
    (contains text "test_obs_render_ns_bucket{le=\"4194304\"} 2");
  (* find_histogram sees through the registry *)
  Alcotest.(check bool) "find_histogram hits" true
    (Obs.Metrics.find_histogram "test_obs_render_ns" <> None);
  Alcotest.(check bool) "find_histogram misses unknown names" true
    (Obs.Metrics.find_histogram "test_obs_not_registered" = None)

(* --------------------------------------------------------------- *)
(* Span tracing *)

let test_trace_disabled_is_silent () =
  Obs.Trace.stop ();
  let before = List.length (Obs.Trace.events ()) in
  let r = Obs.Trace.span "quiet" (fun () -> 7) in
  Alcotest.(check int) "span is transparent" 7 r;
  Alcotest.(check int) "nothing recorded while off" before
    (List.length (Obs.Trace.events ()))

let test_trace_records_and_clears () =
  Obs.Trace.start ();
  Alcotest.(check bool) "start enables" true (Obs.Trace.on ());
  ignore (Obs.Trace.span ~cat:"t" "outer" (fun () ->
      Obs.Trace.span ~cat:"t" "inner" (fun () -> ignore (Sys.opaque_identity 1))));
  (try Obs.Trace.span "raises" (fun () -> failwith "x")
   with Failure _ -> ());
  Obs.Trace.stop ();
  let evs = Obs.Trace.events () in
  let names = List.map (fun e -> e.Obs.Trace.name) evs in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("recorded " ^ n) true (List.mem n names))
    [ "outer"; "inner"; "raises" ];
  (* nesting: inner's interval lies within outer's *)
  let find n = List.find (fun e -> e.Obs.Trace.name = n) evs in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "inner nests in outer" true
    (inner.Obs.Trace.ts_ns >= outer.Obs.Trace.ts_ns
    && inner.Obs.Trace.ts_ns + inner.Obs.Trace.dur_ns
       <= outer.Obs.Trace.ts_ns + outer.Obs.Trace.dur_ns);
  (* events come back sorted by begin stamp *)
  let sorted =
    List.sort (fun a b -> compare a.Obs.Trace.ts_ns b.Obs.Trace.ts_ns) evs
  in
  Alcotest.(check bool) "merge order is begin-stamp order" true
    (List.map (fun e -> e.Obs.Trace.ts_ns) evs
    = List.map (fun e -> e.Obs.Trace.ts_ns) sorted);
  (* restarting clears the previous recording *)
  Obs.Trace.start ();
  ignore (Obs.Trace.span "fresh" (fun () -> ()));
  Obs.Trace.stop ();
  let names' = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events ()) in
  Alcotest.(check bool) "start clears old spans" false
    (List.mem "outer" names');
  Alcotest.(check bool) "new span recorded" true (List.mem "fresh" names')

let test_trace_multi_domain () =
  Obs.Trace.start ();
  let ds =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            Obs.Trace.span (Printf.sprintf "d%d" i) (fun () ->
                ignore (Sys.opaque_identity (i * i)))))
  in
  List.iter Domain.join ds;
  Obs.Trace.stop ();
  let evs = Obs.Trace.events () in
  List.iter
    (fun i ->
      let n = Printf.sprintf "d%d" i in
      Alcotest.(check bool) ("domain span " ^ n ^ " merged") true
        (List.exists (fun e -> e.Obs.Trace.name = n) evs))
    [ 0; 1; 2 ]

let test_trace_write_validate () =
  Obs.Trace.start ();
  ignore (Obs.Trace.span ~cat:"a" "s1" (fun () -> ()));
  ignore (Obs.Trace.span ~cat:"b" "s2" (fun () -> ()));
  Obs.Trace.stop ();
  let file = Filename.temp_file "psopt-test-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      (match Obs.Trace.write_file file with
      | Ok n -> Alcotest.(check bool) "write reports >= 2 events" true (n >= 2)
      | Error e -> Alcotest.fail ("write_file: " ^ e));
      match Obs.Trace.validate_file file with
      | Ok shape ->
          Alcotest.(check bool) "validator counts the events" true
            (shape.Obs.Trace.n_events >= 2);
          List.iter
            (fun n ->
              Alcotest.(check bool) ("validator lists " ^ n) true
                (List.mem n shape.Obs.Trace.names))
            [ "s1"; "s2" ]
      | Error e -> Alcotest.fail ("validate_file: " ^ e))

let test_trace_validator_rejects () =
  List.iter
    (fun (label, doc) ->
      Alcotest.(check bool) ("rejects " ^ label) true
        (Result.is_error (Obs.Trace.validate_string doc)))
    [ ("garbage", "not json at all");
      ("no traceEvents", "{\"foo\": []}");
      ("traceEvents not an array", "{\"traceEvents\": 3}");
      ("event without name", "{\"traceEvents\": [{\"ph\": \"X\"}]}");
      ( "wrong phase",
        "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"B\", \"ts\": 0, \
         \"dur\": 1, \"pid\": 1, \"tid\": 0}]}" );
      ("truncated", "{\"traceEvents\": [{\"name\": \"x\"") ]

let test_trace_ctx_stamps_args () =
  Obs.Trace.start ();
  let c = Obs.Trace.new_ctx () in
  Alcotest.(check bool) "ids are 16 hex chars" true
    (String.length c.Obs.Trace.trace_id = 16
    && String.length c.Obs.Trace.span_id = 16
    && String.for_all
         (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
         (c.Obs.Trace.trace_id ^ c.Obs.Trace.span_id));
  Obs.Trace.with_ctx (Some c) (fun () ->
      Alcotest.(check bool) "ambient context visible" true
        (Obs.Trace.current () = Some c);
      ignore (Obs.Trace.span ~args:[ ("k", "v") ] "stamped" (fun () -> ())));
  Alcotest.(check bool) "context restored after with_ctx" true
    (Obs.Trace.current () = None);
  ignore (Obs.Trace.span "bare" (fun () -> ()));
  Obs.Trace.stop ();
  let evs = Obs.Trace.events () in
  let find n = List.find (fun e -> e.Obs.Trace.name = n) evs in
  let stamped = find "stamped" and bare = find "bare" in
  Alcotest.(check (option string)) "trace_id stamped"
    (Some c.Obs.Trace.trace_id)
    (List.assoc_opt "trace_id" stamped.Obs.Trace.args);
  Alcotest.(check (option string)) "span_id stamped"
    (Some c.Obs.Trace.span_id)
    (List.assoc_opt "span_id" stamped.Obs.Trace.args);
  Alcotest.(check (option string)) "caller args preserved" (Some "v")
    (List.assoc_opt "k" stamped.Obs.Trace.args);
  Alcotest.(check (option string)) "no stamp outside the context" None
    (List.assoc_opt "trace_id" bare.Obs.Trace.args)

let test_trace_ctx_per_thread () =
  (* contexts are per-thread, not per-domain: two threads on the same
     domain must not clobber each other — the daemon's handler threads
     all live on domain 0 *)
  Obs.Trace.start ();
  let barrier = Mutex.create () in
  let seen = Array.make 2 None in
  Mutex.lock barrier;
  let mk i =
    Thread.create
      (fun () ->
        let c = Obs.Trace.new_ctx () in
        Obs.Trace.with_ctx (Some c) (fun () ->
            Mutex.lock barrier;
            Mutex.unlock barrier;
            seen.(i) <- (if Obs.Trace.current () = Some c then Some true
                         else Some false)))
      ()
  in
  let t0 = mk 0 and t1 = mk 1 in
  Thread.delay 0.05;
  Mutex.unlock barrier;
  Thread.join t0;
  Thread.join t1;
  Obs.Trace.stop ();
  Alcotest.(check (option bool)) "thread 0 kept its context" (Some true) seen.(0);
  Alcotest.(check (option bool)) "thread 1 kept its context" (Some true) seen.(1)

let test_trace_merge_files () =
  let mk_file name ts =
    Obs.Trace.start ();
    Obs.Trace.add ~name ~ts_ns:ts ~dur_ns:1000 ();
    Obs.Trace.stop ();
    let file = Filename.temp_file "psopt-test-merge" ".json" in
    match Obs.Trace.write_file file with
    | Ok _ -> file
    | Error e -> Alcotest.fail ("write_file: " ^ e)
  in
  let a = mk_file "from_a" 5_000_000 in
  let b = mk_file "from_b" 9_000_000 in
  let out = Filename.temp_file "psopt-test-merged" ".json" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ a; b; out ])
    (fun () ->
      (match Obs.Trace.merge_files ~inputs:[ a; b ] ~output:out with
      | Ok n -> Alcotest.(check int) "merged event count" 2 n
      | Error e -> Alcotest.fail ("merge_files: " ^ e));
      match Obs.Trace.validate_file out with
      | Ok shape ->
          Alcotest.(check int) "merged doc validates with both events" 2
            shape.Obs.Trace.n_events;
          List.iter
            (fun n ->
              Alcotest.(check bool) ("merged doc lists " ^ n) true
                (List.mem n shape.Obs.Trace.names))
            [ "from_a"; "from_b" ]
      | Error e -> Alcotest.fail ("validate merged: " ^ e))

(* --------------------------------------------------------------- *)
(* Series ring *)

let test_series_ring_wrap () =
  let s = Obs.Series.create ~capacity:4 ~interval_s:1.0 () in
  Alcotest.(check int) "empty length" 0 (Obs.Series.length s);
  for i = 1 to 6 do
    Obs.Series.push s ~ts_ns:(i * 1000) [ ("qps", float_of_int i) ]
  done;
  Alcotest.(check int) "length clamps at capacity" 4 (Obs.Series.length s);
  Alcotest.(check int) "total counts overwritten samples" 6
    (Obs.Series.total s);
  Alcotest.(check (list (float 1e-9))) "oldest-first, oldest overwritten"
    [ 3.; 4.; 5.; 6. ]
    (Obs.Series.values s "qps");
  (match Obs.Series.last s with
  | Some { Obs.Series.ts_ns; values } ->
      Alcotest.(check int) "last keeps its stamp" 6000 ts_ns;
      Alcotest.(check (option (float 1e-9))) "last value" (Some 6.)
        (List.assoc_opt "qps" values)
  | None -> Alcotest.fail "last sample missing");
  Alcotest.(check bool) "capacity must be positive" true
    (try
       ignore (Obs.Series.create ~capacity:0 ~interval_s:1.0 ());
       false
     with Invalid_argument _ -> true)

let test_series_family_filter () =
  let s =
    Obs.Series.create ~capacity:8 ~families:[ "psopt_service" ] ~interval_s:1.0
      ()
  in
  Obs.Series.push s ~ts_ns:1
    [ ("psopt_service_served_total", 10.); ("unrelated_metric", 3.) ];
  Alcotest.(check (list (float 1e-9))) "selected family kept" [ 10. ]
    (Obs.Series.values s "psopt_service_served_total");
  Alcotest.(check (list (float 1e-9))) "other families dropped at insert" []
    (Obs.Series.values s "unrelated_metric")

(* --------------------------------------------------------------- *)
(* Exposition parsing + windowed quantiles (the [psopt top] path) *)

let test_parse_exposition () =
  let text =
    "# HELP psopt_test_total help text\n\
     # TYPE psopt_test_total counter\n\
     psopt_test_total 42\n\
     psopt_test_labeled{reason=\"over load\",k=\"a\\\"b\"} 7\n\
     psopt_test_bucket{le=\"+Inf\"} 9\n\
     malformed line without a value\n\
     psopt_test_nan NaN\n"
  in
  let exposed = Obs.Metrics.parse_exposition text in
  let find name =
    List.find_opt (fun e -> e.Obs.Metrics.ex_name = name) exposed
  in
  (match find "psopt_test_total" with
  | Some e -> Alcotest.(check (float 1e-9)) "plain value" 42. e.Obs.Metrics.ex_value
  | None -> Alcotest.fail "psopt_test_total missing");
  (match find "psopt_test_labeled" with
  | Some e ->
      Alcotest.(check (option string)) "label value may contain spaces"
        (Some "over load")
        (List.assoc_opt "reason" e.Obs.Metrics.ex_labels);
      Alcotest.(check (option string)) "escaped quote in label value"
        (Some "a\"b")
        (List.assoc_opt "k" e.Obs.Metrics.ex_labels)
  | None -> Alcotest.fail "labeled sample missing");
  (match find "psopt_test_bucket" with
  | Some e ->
      Alcotest.(check bool) "+Inf parses to infinity" true
        (e.Obs.Metrics.ex_value = 9.
        && List.assoc_opt "le" e.Obs.Metrics.ex_labels = Some "+Inf")
  | None -> Alcotest.fail "bucket sample missing");
  Alcotest.(check bool) "NaN value parses" true
    (match find "psopt_test_nan" with
    | Some e -> Float.is_nan e.Obs.Metrics.ex_value
    | None -> false)

let test_render_parse_roundtrip () =
  (* everything the registry renders must come back through the parser *)
  let c = Obs.Metrics.counter ~help:"x" "psopt_test_rp_total" in
  Obs.Metrics.incr c;
  let h = Obs.Metrics.histogram ~help:"x" "psopt_test_rp_ns" in
  Obs.Metrics.observe_ns h 1234;
  let exposed = Obs.Metrics.parse_exposition (Obs.Metrics.render ()) in
  Alcotest.(check bool) "counter round-trips" true
    (List.exists
       (fun e ->
         e.Obs.Metrics.ex_name = "psopt_test_rp_total"
         && e.Obs.Metrics.ex_value >= 1.)
       exposed);
  Alcotest.(check bool) "histogram count round-trips" true
    (List.exists
       (fun e ->
         e.Obs.Metrics.ex_name = "psopt_test_rp_ns_count"
         && e.Obs.Metrics.ex_value >= 1.)
       exposed);
  Alcotest.(check bool) "histogram buckets round-trip cumulative" true
    (List.exists
       (fun e ->
         e.Obs.Metrics.ex_name = "psopt_test_rp_ns_bucket"
         && List.assoc_opt "le" e.Obs.Metrics.ex_labels = Some "+Inf"
         && e.Obs.Metrics.ex_value >= 1.)
       exposed)

let test_quantile_from_cumulative () =
  (* 10 samples <= 100, 90 more <= 1000, none beyond *)
  let buckets = [ (100., 10.); (1000., 100.); (infinity, 100.) ] in
  let p50 = Obs.Metrics.quantile_from_cumulative buckets ~q:0.5 in
  Alcotest.(check bool) "p50 lands in the second bucket" true
    (p50 > 100. && p50 <= 1000.);
  let p05 = Obs.Metrics.quantile_from_cumulative buckets ~q:0.05 in
  Alcotest.(check bool) "p05 lands in the first bucket" true (p05 <= 100.);
  Alcotest.(check (float 1e-9)) "empty window is 0" 0.
    (Obs.Metrics.quantile_from_cumulative [ (100., 0.); (infinity, 0.) ]
       ~q:0.99)

(* --------------------------------------------------------------- *)
(* Logger *)

let test_log_line_format () =
  Alcotest.(check string) "bare fields stay bare"
    "psopt[warn] stress: case quarantined seed=41 rate=0.05"
    (Obs.Log.line Obs.Log.Warn ~src:"stress" "case quarantined"
       [ ("seed", "41"); ("rate", "0.05") ]);
  Alcotest.(check string) "no fields, no trailing space"
    "psopt[info] serve: listening"
    (Obs.Log.line Obs.Log.Info ~src:"serve" "listening" []);
  (* values with spaces or sexp metacharacters get quoted+escaped *)
  let l =
    Obs.Log.line Obs.Log.Error ~src:"x" "m"
      [ ("file", "q/case 41.sexp"); ("odd", "a\"b\\c") ]
  in
  Alcotest.(check bool) "spaced value is quoted" true
    (contains l "file=\"q/case 41.sexp\"");
  Alcotest.(check bool) "quotes and backslashes escaped" true
    (contains l "odd=\"a\\\"b\\\\c\"")

let test_log_levels () =
  let seen = ref [] in
  let old = Obs.Log.level () in
  Obs.Log.set_sink (Some (fun l -> seen := l :: !seen));
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_sink None;
      Obs.Log.set_level old)
    (fun () ->
      Obs.Log.set_level Obs.Log.Warn;
      Alcotest.(check bool) "warn enabled at warn" true
        (Obs.Log.enabled Obs.Log.Warn);
      Alcotest.(check bool) "info disabled at warn" false
        (Obs.Log.enabled Obs.Log.Info);
      Obs.Log.info ~src:"t" "dropped";
      Obs.Log.warn ~src:"t" "kept" ~fields:[ ("k", "v") ];
      Obs.Log.err ~src:"t" "kept too";
      Alcotest.(check int) "only warn+error got through" 2
        (List.length !seen);
      Alcotest.(check bool) "fields rendered" true
        (List.exists (fun l -> contains l "k=v") !seen);
      Obs.Log.set_level Obs.Log.Quiet;
      Obs.Log.err ~src:"t" "silenced";
      Alcotest.(check int) "quiet silences errors" 2 (List.length !seen))

let test_log_level_names () =
  List.iter
    (fun (s, l) ->
      Alcotest.(check bool) ("parses " ^ s) true
        (Obs.Log.level_of_string s = Some l))
    [ ("debug", Obs.Log.Debug); ("info", Obs.Log.Info);
      ("warn", Obs.Log.Warn); ("warning", Obs.Log.Warn);
      ("error", Obs.Log.Error); ("err", Obs.Log.Error);
      ("quiet", Obs.Log.Quiet); ("none", Obs.Log.Quiet);
      ("WARN", Obs.Log.Warn) ];
  Alcotest.(check bool) "rejects junk" true
    (Obs.Log.level_of_string "loud" = None)

(* --------------------------------------------------------------- *)
(* Clock *)

let test_clock () =
  let t0 = Obs.Clock.now_ns () in
  let t1 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "clock does not go backwards across two reads" true
    (t1 >= t0);
  Alcotest.(check bool) "epoch nanoseconds are plausible" true
    (t0 > 1_000_000_000 * 1_000_000_000);
  Alcotest.(check int) "ms_of_ns truncates" 1 (Obs.Clock.ms_of_ns 1_999_999);
  Alcotest.(check (float 1e-9)) "us_of_ns is exact" 1.5
    (Obs.Clock.us_of_ns 1_500)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "registration is idempotent" `Quick
            test_counter_idempotent;
          Alcotest.test_case "gauge set" `Quick test_gauge_set;
          Alcotest.test_case "histogram summary quantiles" `Quick
            test_histogram_summary;
          Alcotest.test_case "time observes normal + raising thunks" `Quick
            test_histogram_time;
          Alcotest.test_case "prometheus render shape" `Quick
            test_render_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled recording is silent" `Quick
            test_trace_disabled_is_silent;
          Alcotest.test_case "record, nest, clear on restart" `Quick
            test_trace_records_and_clears;
          Alcotest.test_case "spans merge across domains" `Quick
            test_trace_multi_domain;
          Alcotest.test_case "write_file round-trips the validator" `Quick
            test_trace_write_validate;
          Alcotest.test_case "validator rejects malformed documents" `Quick
            test_trace_validator_rejects;
          Alcotest.test_case "context stamps trace/span ids into args" `Quick
            test_trace_ctx_stamps_args;
          Alcotest.test_case "contexts are per-thread on one domain" `Quick
            test_trace_ctx_per_thread;
          Alcotest.test_case "merge_files stitches two documents" `Quick
            test_trace_merge_files;
        ] );
      ( "series",
        [
          Alcotest.test_case "ring wraps, oldest-first, total counts" `Quick
            test_series_ring_wrap;
          Alcotest.test_case "family filter applies at insert" `Quick
            test_series_family_filter;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "parser handles labels, escapes, NaN" `Quick
            test_parse_exposition;
          Alcotest.test_case "render/parse round-trip" `Quick
            test_render_parse_roundtrip;
          Alcotest.test_case "windowed quantile from cumulative buckets" `Quick
            test_quantile_from_cumulative;
        ] );
      ( "log",
        [
          Alcotest.test_case "line format + escaping" `Quick
            test_log_line_format;
          Alcotest.test_case "level thresholds" `Quick test_log_levels;
          Alcotest.test_case "level names" `Quick test_log_level_names;
        ] );
      ("clock", [ Alcotest.test_case "time source" `Quick test_clock ]);
    ]
