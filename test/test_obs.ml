(* The telemetry subsystem: registry semantics, histogram math, trace
   recording/export/validation, and the logger's formatting contract.

   Everything here runs against the process-global registry, so tests
   use distinct metric names and assert on deltas, never on absolute
   registry state. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --------------------------------------------------------------- *)
(* Metrics registry *)

let test_counter_idempotent () =
  let a = Obs.Metrics.counter "test_obs_idem_total" in
  let b = Obs.Metrics.counter "test_obs_idem_total" in
  Obs.Metrics.incr a;
  Obs.Metrics.add b 2;
  (* same (name, labels) pair: both handles reach one cell *)
  Alcotest.(check int) "one cell behind two handles" 3 (Obs.Metrics.value a);
  (* distinct labels are distinct cells *)
  let l1 = Obs.Metrics.counter ~labels:[ ("k", "v1") ] "test_obs_lbl_total" in
  let l2 = Obs.Metrics.counter ~labels:[ ("k", "v2") ] "test_obs_lbl_total" in
  Obs.Metrics.incr l1;
  Alcotest.(check int) "labelled siblings are independent" 0
    (Obs.Metrics.value l2)

let test_gauge_set () =
  let g = Obs.Metrics.gauge "test_obs_gauge" in
  Obs.Metrics.set g 41;
  Obs.Metrics.set g 7;
  Alcotest.(check int) "set overwrites" 7 (Obs.Metrics.value g)

let test_histogram_summary () =
  let h = Obs.Metrics.histogram "test_obs_hist_ns" in
  Alcotest.(check int) "fresh histogram is empty" 0
    (Obs.Metrics.histogram_count h);
  let s0 = Obs.Metrics.summary h in
  Alcotest.(check int) "empty summary: count" 0 s0.Obs.Metrics.count;
  Alcotest.(check (float 0.0)) "empty summary: p99" 0.0 s0.Obs.Metrics.p99_ns;
  (* 90 small observations and 10 large ones: p50 must land in the
     small bucket's range, p99 in the large one's.  Buckets are
     power-of-two, so quantile estimates carry at most 2x error —
     assert bucket membership, not exact values. *)
  for _ = 1 to 90 do
    Obs.Metrics.observe_ns h 2_000
  done;
  for _ = 1 to 10 do
    Obs.Metrics.observe_ns h 1_000_000
  done;
  let s = Obs.Metrics.summary h in
  Alcotest.(check int) "count" 100 s.Obs.Metrics.count;
  Alcotest.(check int) "sum" (90 * 2_000 + 10 * 1_000_000)
    s.Obs.Metrics.sum_ns;
  Alcotest.(check bool) "p50 in the small bucket" true
    (s.Obs.Metrics.p50_ns >= 1024. && s.Obs.Metrics.p50_ns <= 4096.);
  Alcotest.(check bool) "p99 in the large bucket" true
    (s.Obs.Metrics.p99_ns > 500_000. && s.Obs.Metrics.p99_ns <= 2_097_152.);
  Alcotest.(check bool) "quantiles are monotone" true
    (s.Obs.Metrics.p50_ns <= s.Obs.Metrics.p90_ns
    && s.Obs.Metrics.p90_ns <= s.Obs.Metrics.p99_ns);
  (* negative observations clamp instead of raising *)
  Obs.Metrics.observe_ns h (-5);
  Alcotest.(check int) "negative observation counted" 101
    (Obs.Metrics.histogram_count h)

let test_histogram_time () =
  let h = Obs.Metrics.histogram "test_obs_time_ns" in
  let r = Obs.Metrics.time h (fun () -> 42) in
  Alcotest.(check int) "time returns the thunk's value" 42 r;
  Alcotest.(check int) "one observation" 1 (Obs.Metrics.histogram_count h);
  (* the duration is observed even when the thunk raises *)
  (try Obs.Metrics.time h (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "exception still observed" 2
    (Obs.Metrics.histogram_count h)

let test_render_shape () =
  let c = Obs.Metrics.counter ~help:"a test counter" "test_obs_render_total" in
  Obs.Metrics.add c 5;
  let h = Obs.Metrics.histogram "test_obs_render_ns" in
  Obs.Metrics.observe_ns h 2_000;
  Obs.Metrics.observe_ns h 3_000_000;
  let text = Obs.Metrics.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("render contains " ^ needle) true
        (contains text needle))
    [ "# HELP test_obs_render_total a test counter";
      "# TYPE test_obs_render_total counter";
      "test_obs_render_total 5";
      "# TYPE test_obs_render_ns histogram";
      "test_obs_render_ns_count 2";
      "test_obs_render_ns_sum 3002000";
      "test_obs_render_ns_bucket{le=\"+Inf\"} 2" ];
  (* buckets are cumulative: the 2048-bucket holds the small
     observation, every bucket past 2^22 ns holds both *)
  Alcotest.(check bool) "small bucket cumulative" true
    (contains text "test_obs_render_ns_bucket{le=\"2048\"} 1");
  Alcotest.(check bool) "large bucket cumulative" true
    (contains text "test_obs_render_ns_bucket{le=\"4194304\"} 2");
  (* find_histogram sees through the registry *)
  Alcotest.(check bool) "find_histogram hits" true
    (Obs.Metrics.find_histogram "test_obs_render_ns" <> None);
  Alcotest.(check bool) "find_histogram misses unknown names" true
    (Obs.Metrics.find_histogram "test_obs_not_registered" = None)

(* --------------------------------------------------------------- *)
(* Span tracing *)

let test_trace_disabled_is_silent () =
  Obs.Trace.stop ();
  let before = List.length (Obs.Trace.events ()) in
  let r = Obs.Trace.span "quiet" (fun () -> 7) in
  Alcotest.(check int) "span is transparent" 7 r;
  Alcotest.(check int) "nothing recorded while off" before
    (List.length (Obs.Trace.events ()))

let test_trace_records_and_clears () =
  Obs.Trace.start ();
  Alcotest.(check bool) "start enables" true (Obs.Trace.on ());
  ignore (Obs.Trace.span ~cat:"t" "outer" (fun () ->
      Obs.Trace.span ~cat:"t" "inner" (fun () -> ignore (Sys.opaque_identity 1))));
  (try Obs.Trace.span "raises" (fun () -> failwith "x")
   with Failure _ -> ());
  Obs.Trace.stop ();
  let evs = Obs.Trace.events () in
  let names = List.map (fun e -> e.Obs.Trace.name) evs in
  List.iter
    (fun n ->
      Alcotest.(check bool) ("recorded " ^ n) true (List.mem n names))
    [ "outer"; "inner"; "raises" ];
  (* nesting: inner's interval lies within outer's *)
  let find n = List.find (fun e -> e.Obs.Trace.name = n) evs in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "inner nests in outer" true
    (inner.Obs.Trace.ts_ns >= outer.Obs.Trace.ts_ns
    && inner.Obs.Trace.ts_ns + inner.Obs.Trace.dur_ns
       <= outer.Obs.Trace.ts_ns + outer.Obs.Trace.dur_ns);
  (* events come back sorted by begin stamp *)
  let sorted =
    List.sort (fun a b -> compare a.Obs.Trace.ts_ns b.Obs.Trace.ts_ns) evs
  in
  Alcotest.(check bool) "merge order is begin-stamp order" true
    (List.map (fun e -> e.Obs.Trace.ts_ns) evs
    = List.map (fun e -> e.Obs.Trace.ts_ns) sorted);
  (* restarting clears the previous recording *)
  Obs.Trace.start ();
  ignore (Obs.Trace.span "fresh" (fun () -> ()));
  Obs.Trace.stop ();
  let names' = List.map (fun e -> e.Obs.Trace.name) (Obs.Trace.events ()) in
  Alcotest.(check bool) "start clears old spans" false
    (List.mem "outer" names');
  Alcotest.(check bool) "new span recorded" true (List.mem "fresh" names')

let test_trace_multi_domain () =
  Obs.Trace.start ();
  let ds =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            Obs.Trace.span (Printf.sprintf "d%d" i) (fun () ->
                ignore (Sys.opaque_identity (i * i)))))
  in
  List.iter Domain.join ds;
  Obs.Trace.stop ();
  let evs = Obs.Trace.events () in
  List.iter
    (fun i ->
      let n = Printf.sprintf "d%d" i in
      Alcotest.(check bool) ("domain span " ^ n ^ " merged") true
        (List.exists (fun e -> e.Obs.Trace.name = n) evs))
    [ 0; 1; 2 ]

let test_trace_write_validate () =
  Obs.Trace.start ();
  ignore (Obs.Trace.span ~cat:"a" "s1" (fun () -> ()));
  ignore (Obs.Trace.span ~cat:"b" "s2" (fun () -> ()));
  Obs.Trace.stop ();
  let file = Filename.temp_file "psopt-test-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      (match Obs.Trace.write_file file with
      | Ok n -> Alcotest.(check bool) "write reports >= 2 events" true (n >= 2)
      | Error e -> Alcotest.fail ("write_file: " ^ e));
      match Obs.Trace.validate_file file with
      | Ok shape ->
          Alcotest.(check bool) "validator counts the events" true
            (shape.Obs.Trace.n_events >= 2);
          List.iter
            (fun n ->
              Alcotest.(check bool) ("validator lists " ^ n) true
                (List.mem n shape.Obs.Trace.names))
            [ "s1"; "s2" ]
      | Error e -> Alcotest.fail ("validate_file: " ^ e))

let test_trace_validator_rejects () =
  List.iter
    (fun (label, doc) ->
      Alcotest.(check bool) ("rejects " ^ label) true
        (Result.is_error (Obs.Trace.validate_string doc)))
    [ ("garbage", "not json at all");
      ("no traceEvents", "{\"foo\": []}");
      ("traceEvents not an array", "{\"traceEvents\": 3}");
      ("event without name", "{\"traceEvents\": [{\"ph\": \"X\"}]}");
      ( "wrong phase",
        "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"B\", \"ts\": 0, \
         \"dur\": 1, \"pid\": 1, \"tid\": 0}]}" );
      ("truncated", "{\"traceEvents\": [{\"name\": \"x\"") ]

(* --------------------------------------------------------------- *)
(* Logger *)

let test_log_line_format () =
  Alcotest.(check string) "bare fields stay bare"
    "psopt[warn] stress: case quarantined seed=41 rate=0.05"
    (Obs.Log.line Obs.Log.Warn ~src:"stress" "case quarantined"
       [ ("seed", "41"); ("rate", "0.05") ]);
  Alcotest.(check string) "no fields, no trailing space"
    "psopt[info] serve: listening"
    (Obs.Log.line Obs.Log.Info ~src:"serve" "listening" []);
  (* values with spaces or sexp metacharacters get quoted+escaped *)
  let l =
    Obs.Log.line Obs.Log.Error ~src:"x" "m"
      [ ("file", "q/case 41.sexp"); ("odd", "a\"b\\c") ]
  in
  Alcotest.(check bool) "spaced value is quoted" true
    (contains l "file=\"q/case 41.sexp\"");
  Alcotest.(check bool) "quotes and backslashes escaped" true
    (contains l "odd=\"a\\\"b\\\\c\"")

let test_log_levels () =
  let seen = ref [] in
  let old = Obs.Log.level () in
  Obs.Log.set_sink (Some (fun l -> seen := l :: !seen));
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_sink None;
      Obs.Log.set_level old)
    (fun () ->
      Obs.Log.set_level Obs.Log.Warn;
      Alcotest.(check bool) "warn enabled at warn" true
        (Obs.Log.enabled Obs.Log.Warn);
      Alcotest.(check bool) "info disabled at warn" false
        (Obs.Log.enabled Obs.Log.Info);
      Obs.Log.info ~src:"t" "dropped";
      Obs.Log.warn ~src:"t" "kept" ~fields:[ ("k", "v") ];
      Obs.Log.err ~src:"t" "kept too";
      Alcotest.(check int) "only warn+error got through" 2
        (List.length !seen);
      Alcotest.(check bool) "fields rendered" true
        (List.exists (fun l -> contains l "k=v") !seen);
      Obs.Log.set_level Obs.Log.Quiet;
      Obs.Log.err ~src:"t" "silenced";
      Alcotest.(check int) "quiet silences errors" 2 (List.length !seen))

let test_log_level_names () =
  List.iter
    (fun (s, l) ->
      Alcotest.(check bool) ("parses " ^ s) true
        (Obs.Log.level_of_string s = Some l))
    [ ("debug", Obs.Log.Debug); ("info", Obs.Log.Info);
      ("warn", Obs.Log.Warn); ("warning", Obs.Log.Warn);
      ("error", Obs.Log.Error); ("err", Obs.Log.Error);
      ("quiet", Obs.Log.Quiet); ("none", Obs.Log.Quiet);
      ("WARN", Obs.Log.Warn) ];
  Alcotest.(check bool) "rejects junk" true
    (Obs.Log.level_of_string "loud" = None)

(* --------------------------------------------------------------- *)
(* Clock *)

let test_clock () =
  let t0 = Obs.Clock.now_ns () in
  let t1 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "clock does not go backwards across two reads" true
    (t1 >= t0);
  Alcotest.(check bool) "epoch nanoseconds are plausible" true
    (t0 > 1_000_000_000 * 1_000_000_000);
  Alcotest.(check int) "ms_of_ns truncates" 1 (Obs.Clock.ms_of_ns 1_999_999);
  Alcotest.(check (float 1e-9)) "us_of_ns is exact" 1.5
    (Obs.Clock.us_of_ns 1_500)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "registration is idempotent" `Quick
            test_counter_idempotent;
          Alcotest.test_case "gauge set" `Quick test_gauge_set;
          Alcotest.test_case "histogram summary quantiles" `Quick
            test_histogram_summary;
          Alcotest.test_case "time observes normal + raising thunks" `Quick
            test_histogram_time;
          Alcotest.test_case "prometheus render shape" `Quick
            test_render_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled recording is silent" `Quick
            test_trace_disabled_is_silent;
          Alcotest.test_case "record, nest, clear on restart" `Quick
            test_trace_records_and_clears;
          Alcotest.test_case "spans merge across domains" `Quick
            test_trace_multi_domain;
          Alcotest.test_case "write_file round-trips the validator" `Quick
            test_trace_write_validate;
          Alcotest.test_case "validator rejects malformed documents" `Quick
            test_trace_validator_rejects;
        ] );
      ( "log",
        [
          Alcotest.test_case "line format + escaping" `Quick
            test_log_line_format;
          Alcotest.test_case "level thresholds" `Quick test_log_levels;
          Alcotest.test_case "level names" `Quick test_log_level_names;
        ] );
      ("clock", [ Alcotest.test_case "time source" `Quick test_clock ]);
    ]
