(* The state-space reduction layer (docs/REDUCTION.md): the reduced
   explorer must preserve the behaviours the rest of the system
   consumes.

   Equality criteria per technique:
   - symmetry alone is raw-traceset preserving (memo keys fold, the
     tree itself is not pruned), so reduced vs. unreduced runs are
     compared with [Traceset.equal];
   - the partial-order rules prune switch chatter, which can drop
     redundant [Open] divergence prefixes, so any [por] comparison
     uses [Traceset.equal_behaviour] (prefix-closure equality) —
     completed traces must survive exactly;
   - at a FIXED reduction setting the traceset is deterministic across
     pool widths (pruning is a pure function of the node and the
     config), so the cross-j checks use raw equality like
     test_parallel.ml does. *)

module Config = Explore.Config
module Enum = Explore.Enum
module Traceset = Explore.Traceset
module Stats = Explore.Stats

let pp_comp = Enum.pp_completeness

let at_j j config =
  { config with Config.domains = j; oversubscribe = j > 1 }

let run ?(j = 1) ~config disc prog =
  Enum.behaviors_exn ~config:(at_j j config) disc prog

let reduced r config = { config with Config.reduction = r }

let por_only = { Config.no_reduction with Config.por = true }
let sym_only = { Config.no_reduction with Config.symmetry = true }

let disciplines = [ Enum.Interleaving; Enum.Non_preemptive ]

let check_equal name a b =
  Alcotest.(check bool) (name ^ ": traceset equal") true (Traceset.equal a b)

let check_behaviour name a b =
  Alcotest.(check bool)
    (name ^ ": behaviour equal (prefix closures)")
    true
    (Traceset.equal_behaviour a b)

let check_comp name (a : Enum.outcome) (b : Enum.outcome) =
  Alcotest.(check string)
    (name ^ ": completeness equal")
    (Format.asprintf "%a" pp_comp a.Enum.completeness)
    (Format.asprintf "%a" pp_comp b.Enum.completeness)

(* 1. Litmus corpus, both disciplines: full reduction preserves the
   behaviour set and the (exhaustive) completeness; symmetry alone
   preserves the raw traceset. *)
let test_corpus () =
  List.iter
    (fun (t : Litmus.t) ->
      List.iter
        (fun disc ->
          let name =
            Format.asprintf "%s %a" t.Litmus.name Enum.pp_discipline disc
          in
          let base = run ~config:Config.default disc t.Litmus.prog in
          let full =
            run ~config:(reduced Config.full_reduction Config.default) disc
              t.Litmus.prog
          in
          check_behaviour (name ^ " full") base.Enum.traces full.Enum.traces;
          check_comp (name ^ " full") base full;
          let sym =
            run ~config:(reduced sym_only Config.default) disc t.Litmus.prog
          in
          check_equal (name ^ " symmetry raw") base.Enum.traces sym.Enum.traces;
          check_comp (name ^ " symmetry") base sym)
        disciplines)
    Litmus.all

(* 2. The 108-seed random corpus of test_parallel.ml, reduction on:
   reduced vs. unreduced behaviour equality (fault-free seeds), and
   determinism of the reduced traceset across j in {1, 2, 4} for every
   seed — faults included, since pruning is a pure function of the
   node and the config. *)
let test_seeds () =
  for seed = 0 to 107 do
    let prog = Explore.Stress.generate ~seed in
    let config =
      {
        Config.default with
        Config.max_steps = 48;
        fault =
          (if seed mod 2 = 0 then
             Some { Config.fault_seed = seed; fault_rate = 0.03 }
           else None);
      }
    in
    let rconfig = reduced Config.full_reduction config in
    List.iter
      (fun disc ->
        let name =
          Format.asprintf "seed %d %a" seed Enum.pp_discipline disc
        in
        let o1 = run ~j:1 ~config:rconfig disc prog in
        List.iter
          (fun j ->
            let oj = run ~j ~config:rconfig disc prog in
            check_equal
              (Printf.sprintf "%s reduced j=%d" name j)
              o1.Enum.traces oj.Enum.traces;
            check_comp (Printf.sprintf "%s reduced j=%d" name j) o1 oj)
          [ 2; 4 ];
        if config.Config.fault = None then begin
          let base = run ~j:1 ~config disc prog in
          check_behaviour (name ^ " vs unreduced") base.Enum.traces
            o1.Enum.traces;
          check_comp (name ^ " vs unreduced") base o1
        end)
      disciplines
  done

(* 3. Symmetry suite: N identical writer threads next to one reader,
   N in {2, 3, 4}.  Raw traceset equality, exhaustiveness, and the
   folds counter actually firing (the orbit is explored once).  The
   writers run under distinct fnames (w0, w1, ...) on purpose: the
   canonicalizer must identify them through [equal_codeheap], not by
   name.  The unreduced baseline blows up with N (that is the point
   of the reduction), so N >= 3 runs promise-free and N = 4 lives in
   a [`Slow] case — its baseline alone is ~4M nodes. *)
let sym_prog n =
  let open Lang.Build in
  let wname k = Printf.sprintf "w%d" k in
  program ~atomics:[ "x" ]
    (proc "reader"
       [
         blk "L0"
           [
             load "r1" "x" ~mode:Lang.Modes.Rlx;
             load "r2" "x" ~mode:Lang.Modes.Rlx;
             print (r "r1");
             print (r "r2");
           ]
           ret;
       ]
    :: List.init n (fun k ->
           proc (wname k)
             [ blk "L0" [ store "x" ~mode:Lang.Modes.WRlx (i 1) ] ret ]))
    ~threads:("reader" :: List.init n wname)

let sym_config n =
  if n >= 3 then { Config.default with Config.max_promises = 0 }
  else Config.default

let check_symmetry_n n =
  let prog = sym_prog n in
  let config = sym_config n in
  List.iter
    (fun disc ->
      let name = Format.asprintf "sym %d %a" n Enum.pp_discipline disc in
      let base = run ~config disc prog in
      let sym = run ~config:(reduced sym_only config) disc prog in
      check_equal name base.Enum.traces sym.Enum.traces;
      check_comp name base sym;
      Alcotest.(check bool) (name ^ ": exhaustive") true base.Enum.exact;
      Alcotest.(check bool)
        (name ^ ": symmetry folds fired")
        true
        (Atomic.get sym.Enum.stats.Stats.symmetry_folds > 0);
      Alcotest.(check bool)
        (name ^ ": fewer nodes than unreduced")
        true
        (Atomic.get sym.Enum.stats.Stats.nodes
        <= Atomic.get base.Enum.stats.Stats.nodes))
    disciplines

let test_symmetry_suite () = List.iter check_symmetry_n [ 2; 3 ]
let test_symmetry_4 () = check_symmetry_n 4

(* The orbit factor must actually be realized: promise-free, the
   N-writer baseline should shrink by very nearly N! (the reader
   breaks no symmetry).  Require at least half of it to keep the
   check robust against memo-layer noise. *)
let test_symmetry_factor () =
  let n = 3 in
  let config = { Config.default with Config.max_promises = 0 } in
  let base = run ~config Enum.Interleaving (sym_prog n) in
  let sym = run ~config:(reduced sym_only config) Enum.Interleaving (sym_prog n) in
  let nb = Atomic.get base.Enum.stats.Stats.nodes in
  let ns = Atomic.get sym.Enum.stats.Stats.nodes in
  Alcotest.(check bool)
    (Printf.sprintf "orbit fold >= 3 on 3 writers (%d -> %d)" nb ns)
    true
    (nb >= 3 * ns)

(* 4. Thread-index permutation invariance: listing the identical
   threads in any order yields the same behaviour set — the orbit
   collapse cannot depend on which member is the representative. *)
let test_symmetry_permutation () =
  let prog_rev n =
    (* same program as [sym_prog] with the writer thread list reversed *)
    let p = sym_prog n in
    let threads =
      match p.Lang.Ast.threads with
      | reader :: writers -> reader :: List.rev writers
      | [] -> []
    in
    { p with Lang.Ast.threads = threads }
  in
  List.iter
    (fun n ->
      let config = reduced sym_only (sym_config n) in
      let a = run ~config Enum.Interleaving (sym_prog n) in
      let b = run ~config Enum.Interleaving (prog_rev n) in
      check_equal
        (Printf.sprintf "sym %d permuted threads" n)
        a.Enum.traces b.Enum.traces)
    [ 2; 3 ]

(* 4b. Spelling the identical threads as N entries of ONE fname in
   the thread list (the idiomatic way to write replicated workers) is
   the same program: same behaviours, and the orbit still folds. *)
let test_symmetry_shared_fname () =
  let n = 3 in
  let shared =
    let open Lang.Build in
    program ~atomics:[ "x" ]
      [
        proc "reader"
          [
            blk "L0"
              [
                load "r1" "x" ~mode:Lang.Modes.Rlx;
                load "r2" "x" ~mode:Lang.Modes.Rlx;
                print (r "r1");
                print (r "r2");
              ]
              ret;
          ];
        proc "w" [ blk "L0" [ store "x" ~mode:Lang.Modes.WRlx (i 1) ] ret ];
      ]
      ~threads:("reader" :: List.init n (fun _ -> "w"))
  in
  let config = reduced sym_only (sym_config n) in
  let a = run ~config Enum.Interleaving (sym_prog n) in
  let b = run ~config Enum.Interleaving shared in
  check_equal "shared fname = distinct fnames" a.Enum.traces b.Enum.traces;
  Alcotest.(check bool)
    "shared-fname orbit folds" true
    (Atomic.get b.Enum.stats.Stats.symmetry_folds > 0)

(* 5. Orbit expansion is the identity: traces carry no thread ids, so
   a symmetry-reduced traceset is already fully expanded. *)
let test_orbit_expand () =
  let o =
    run ~config:(reduced sym_only (sym_config 3)) Enum.Interleaving (sym_prog 3)
  in
  let classes = [ [| 1; 2; 3 |] ] in
  check_equal "orbit_expand is the identity" o.Enum.traces
    (Traceset.orbit_expand classes o.Enum.traces)

(* 6. The por counters fire and actually shrink the tree on a padded
   workload (local assign chains are where the ample rule lives). *)
let padded_prog =
  let open Lang.Build in
  let padding n = List.init n (fun _ -> assign "a" (r "a" + i 1)) in
  program ~atomics:[ "x" ]
    [
      proc "t1"
        [
          blk "L0"
            (padding 8
            @ [ load "r1" "x" ~mode:Lang.Modes.Rlx; print (r "r1") ])
            ret;
        ];
      proc "t2"
        [ blk "L0" (padding 8 @ [ store "x" ~mode:Lang.Modes.WRlx (i 1) ]) ret ];
    ]
    ~threads:[ "t1"; "t2" ]

let test_por_counters () =
  let base = run ~config:Config.default Enum.Interleaving padded_prog in
  let por = run ~config:(reduced por_only Config.default) Enum.Interleaving padded_prog in
  check_behaviour "padded" base.Enum.traces por.Enum.traces;
  check_comp "padded" base por;
  let nodes o = Atomic.get o.Enum.stats.Stats.nodes in
  Alcotest.(check bool)
    "ample rule fired" true
    (Atomic.get por.Enum.stats.Stats.persistent_prunes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "node count shrank (%d -> %d)" (nodes base) (nodes por))
    true
    (nodes por < nodes base)

(* 7. Bounded promises: monotone behaviours (K ⊆ K+1), exhaustive-for-
   the-bound reporting, and honest truncation when the bound bites. *)
let test_bounded_promises () =
  let outs config =
    let o = run ~config Enum.Interleaving Litmus.lb.Litmus.prog in
    (Traceset.done_outs o.Enum.traces, o)
  in
  let bound k =
    reduced
      { Config.no_reduction with Config.bound_promises = Some k }
      { Config.default with Config.max_promises = 99 }
  in
  let prev = ref None in
  for k = 0 to 3 do
    let o_k, outcome = outs (bound k) in
    (match !prev with
    | Some o_prev ->
        List.iter
          (fun out ->
            Alcotest.(check bool)
              (Printf.sprintf "K=%d ⊆ K=%d" (k - 1) k)
              true (List.mem out o_k))
          o_prev
    | None -> ());
    prev := Some o_k;
    (* lb needs exactly one promise: above that, the bound never
       suppresses a candidate and the run must report exhaustive *)
    if k >= 2 then
      Alcotest.(check bool)
        (Printf.sprintf "K=%d exhaustive" k)
        true outcome.Enum.exact
  done;
  (* K=0 on lb must cut off the promise-dependent outcome and say so *)
  let o0, outcome0 = outs (bound 0) in
  let o2, _ = outs (bound 2) in
  Alcotest.(check bool)
    "K=0 loses the promise outcome" true
    (List.length o0 < List.length o2);
  (match outcome0.Enum.completeness with
  | Enum.Truncated reasons ->
      Alcotest.(check bool)
        "K=0 reports Promise_budget" true
        (List.mem Explore.Errors.Promise_budget reasons)
  | Enum.Exhaustive -> Alcotest.fail "K=0 on lb claimed exhaustive");
  Alcotest.(check bool)
    "K=0 counts promise_bound_hits" true
    (Atomic.get outcome0.Enum.stats.Stats.promise_bound_hits > 0);
  (* the bound overrides max_promises in both directions *)
  let unbounded =
    run
      ~config:{ Config.default with Config.max_promises = 2 }
      Enum.Interleaving Litmus.lb.Litmus.prog
  in
  let via_bound, _ = outs (bound 2) in
  Alcotest.(check bool)
    "bound 2 = max_promises 2 behaviours" true
    (List.equal (List.equal Int.equal)
       (Traceset.done_outs unbounded.Enum.traces)
       via_bound)

(* 8. Reduction off by default, and iter_reachable ignores it: the
   race check must see every reachable state. *)
let test_reachability_unreduced () =
  let count config =
    let n = ref 0 in
    (match
       Enum.iter_reachable ~config Enum.Interleaving padded_prog
         ~f:(fun ~committed:_ _ -> incr n)
     with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "iter_reachable: %s" e);
    !n
  in
  Alcotest.(check int)
    "iter_reachable sees the same states with reduction requested"
    (count Config.default)
    (count (reduced Config.full_reduction Config.default))

let () =
  Alcotest.run "reduction"
    [
      ( "equivalence",
        [
          Alcotest.test_case "litmus corpus, both disciplines" `Quick
            test_corpus;
          Alcotest.test_case "108-seed corpus, reduced, j in {1,2,4}" `Slow
            test_seeds;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "N identical threads, N in {2,3}" `Quick
            test_symmetry_suite;
          Alcotest.test_case "N = 4 (4M-node baseline)" `Slow test_symmetry_4;
          Alcotest.test_case "orbit factor ~ N! realized" `Quick
            test_symmetry_factor;
          Alcotest.test_case "thread order is immaterial" `Quick
            test_symmetry_permutation;
          Alcotest.test_case "one fname, N thread entries" `Quick
            test_symmetry_shared_fname;
          Alcotest.test_case "orbit expansion is the identity" `Quick
            test_orbit_expand;
        ] );
      ( "por",
        [
          Alcotest.test_case "ample rule: counters + shrink" `Quick
            test_por_counters;
        ] );
      ( "bounded-promises",
        [
          Alcotest.test_case "monotone, honest, overrides max_promises" `Quick
            test_bounded_promises;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "iter_reachable forces reduction off" `Quick
            test_reachability_unreduced;
        ] );
    ]
